"""Differential tests: indexed adversaries vs. the seed scan versions.

The four targeted adversaries were rewritten from per-round O(n) node
scans to O(1)-ish queries against the graph's degree-bucket index and
the network's δ-bucket index (plus an incrementally maintained sorted
neighbor list for the sampling attacks). The attack campaigns must not
move by a single victim: these tests replay identical fixed-seed
full-kill campaigns through the indexed adversaries and through the
pre-rewrite implementations (preserved verbatim in
``_scan_adversaries.py``) and assert byte-identical target sequences,
per-round :class:`~repro.core.network.HealEvent` accounting, and final
topology — across multiple topology families and healers, including
tie-break-heavy degree plateaus.

The indexed runs additionally verify the
:func:`repro.analysis.check_degree_index` invariant (bucket indexes vs a
fresh ``degrees()``/``deltas()`` scan) after every single round, via a
per-event metric hook.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary.classic import (
    MaxDeltaNeighborAttack,
    MaxNodeAttack,
    MinDegreeAttack,
    NeighborOfMaxAttack,
)
from repro.analysis import check_degree_index
from repro.core.network import SelfHealingNetwork
from repro.core.registry import HEALERS
from repro.graph.generators import (
    cycle_graph,
    erdos_renyi,
    preferential_attachment,
    random_tree,
    watts_strogatz,
)
from repro.sim.metrics import Metric
from repro.api import run_campaign

from tests.adversary._scan_adversaries import (
    ScanMaxDeltaNeighborAttack,
    ScanMaxNodeAttack,
    ScanMinDegreeAttack,
    ScanNeighborOfMaxAttack,
)

EVENT_FIELDS = (
    "deleted",
    "plan_kind",
    "participants",
    "new_edges",
    "edges_added_to_g",
    "id_changes",
    "messages_sent",
    "components_merged",
    "components_after",
    "split",
)

#: (pytest id, indexed adversary factory, preserved scan factory)
ADVERSARY_PAIRS = [
    ("max-node", lambda: MaxNodeAttack(), lambda: ScanMaxNodeAttack()),
    (
        "neighbor-of-max",
        lambda: NeighborOfMaxAttack(seed=5),
        lambda: ScanNeighborOfMaxAttack(seed=5),
    ),
    ("min-degree", lambda: MinDegreeAttack(), lambda: ScanMinDegreeAttack()),
    (
        "neighbor-of-max-delta",
        lambda: MaxDeltaNeighborAttack(seed=5),
        lambda: ScanMaxDeltaNeighborAttack(seed=5),
    ),
]

#: topology families (≥3 per the acceptance criteria; the cycle is the
#: all-ties plateau — every node has degree 2, so every single round is
#: decided purely by the tie-break)
TOPOLOGIES = [
    ("pa", lambda: preferential_attachment(80, 2, seed=3)),
    ("er", lambda: erdos_renyi(60, 0.1, seed=4)),
    ("ws", lambda: watts_strogatz(64, 4, 0.2, seed=5)),
    ("tree", lambda: random_tree(50, seed=6)),
    ("cycle", lambda: cycle_graph(40)),
]


class _CheckIndexMetric(Metric):
    """Verifies the degree/δ bucket indexes after every heal round."""

    def on_event(self, network, event) -> None:
        check_degree_index(network)

    def finalize(self, network) -> dict[str, float]:
        return {}


def assert_same_campaign(indexed_run, scan_run) -> None:
    """Byte-identical victims, accounting, and final topology."""
    new_net: SelfHealingNetwork = indexed_run.network
    seed_net: SelfHealingNetwork = scan_run.network
    diverged = [
        i
        for i, (a, b) in enumerate(
            zip(new_net.deleted_nodes, seed_net.deleted_nodes)
        )
        if a != b
    ]
    assert new_net.deleted_nodes == seed_net.deleted_nodes, (
        f"target sequences diverged (first differing round: "
        f"{diverged[0] if diverged else 'length mismatch'})"
    )
    assert len(new_net.events) == len(seed_net.events)
    for ev_new, ev_seed in zip(new_net.events, seed_net.events):
        for f in EVENT_FIELDS:
            assert getattr(ev_new, f) == getattr(ev_seed, f), (
                f"round {ev_new.step}: {f} diverged "
                f"({getattr(ev_new, f)!r} != {getattr(ev_seed, f)!r})"
            )
    assert new_net.graph == seed_net.graph
    assert new_net.healing_graph == seed_net.healing_graph
    assert new_net.peak_delta == seed_net.peak_delta
    assert indexed_run.deletions == scan_run.deletions
    assert indexed_run.final_alive == scan_run.final_alive


@pytest.mark.parametrize(
    "adv_name,make_indexed,make_scan",
    ADVERSARY_PAIRS,
    ids=[p[0] for p in ADVERSARY_PAIRS],
)
@pytest.mark.parametrize(
    "topo_name,make_graph", TOPOLOGIES, ids=[t[0] for t in TOPOLOGIES]
)
def test_full_kill_campaign_matches_scan(
    adv_name, make_indexed, make_scan, topo_name, make_graph
):
    """Full-kill campaigns under DASH: every victim identical, with the
    degree/δ indexes scan-verified after every round."""
    indexed_run = run_campaign(
        make_graph(),
        HEALERS["dash"](),
        make_indexed(),
        id_seed=7,
        metrics=[_CheckIndexMetric()],
        keep_events=True,
        keep_network=True,
    )
    scan_run = run_campaign(
        make_graph(),
        HEALERS["dash"](),
        make_scan(),
        id_seed=7,
        keep_events=True,
        keep_network=True,
    )
    assert indexed_run.final_alive == 0
    assert_same_campaign(indexed_run, scan_run)


@pytest.mark.parametrize(
    "adv_name,make_indexed,make_scan",
    ADVERSARY_PAIRS,
    ids=[p[0] for p in ADVERSARY_PAIRS],
)
@pytest.mark.parametrize("healer_name", ["sdash", "graph-heal"])
def test_other_healers_match_scan(
    adv_name, make_indexed, make_scan, healer_name
):
    """The equivalence is healer-independent (including the
    non-component-safe GraphHeal, whose heals reshape degrees freely)."""
    indexed_run = run_campaign(
        preferential_attachment(60, 2, seed=9),
        HEALERS[healer_name](),
        make_indexed(),
        id_seed=9,
        metrics=[_CheckIndexMetric()],
        keep_events=True,
        keep_network=True,
    )
    scan_run = run_campaign(
        preferential_attachment(60, 2, seed=9),
        HEALERS[healer_name](),
        make_scan(),
        id_seed=9,
        keep_events=True,
        keep_network=True,
    )
    assert_same_campaign(indexed_run, scan_run)


@pytest.mark.parametrize(
    "adv_name,make_indexed,make_scan",
    ADVERSARY_PAIRS,
    ids=[p[0] for p in ADVERSARY_PAIRS],
)
def test_interleaved_batch_waves_match_scan(adv_name, make_indexed, make_scan):
    """Adversary rounds interleaved with simultaneous batch waves.

    Batch deletions mutate the graph behind the adversary's back (no
    per-victim choose/heal cycle), which is exactly what the sampling
    attacks' incremental neighbor caches must detect and resync from —
    and the indexes must stay exact through ``delete_batch_and_heal``'s
    mass-removal path.
    """

    def campaign(make_adv):
        net = SelfHealingNetwork(
            preferential_attachment(64, 2, seed=11), HEALERS["dash"](), seed=11
        )
        adv = make_adv()
        adv.reset(net)
        rng = random.Random(11)
        victims = []
        while net.num_alive > 4:
            if rng.random() < 0.3:
                alive = sorted(net.graph.nodes())
                wave = rng.sample(
                    alive, min(len(alive) - 1, rng.randint(2, 4))
                )
                net.delete_batch_and_heal(wave)
                victims.append(("wave", tuple(sorted(wave, key=repr))))
            else:
                target = adv.choose_target(net)
                assert target is not None
                net.delete_and_heal(target)
                victims.append(("single", target))
            check_degree_index(net)
        return net, victims

    new_net, new_victims = campaign(make_indexed)
    seed_net, seed_victims = campaign(make_scan)
    assert new_victims == seed_victims
    assert new_net.graph == seed_net.graph
    assert new_net.peak_delta == seed_net.peak_delta
