"""The pre-index targeted adversaries, preserved verbatim.

These are the full-node-scan implementations of the four targeted attack
strategies exactly as they stood before the degree-bucket/δ-bucket index
rewrite (same pattern as ``tests/core/_seed_tracker.py`` for the
component tracker). They are the ground truth the differential tests in
``test_adversary_differential.py`` replay entire campaigns against: the
indexed versions in :mod:`repro.adversary.classic` must produce
byte-identical target sequences — including ``(key, label)`` tie-breaks
and rng consumption — on every topology and healer combination.

Do not "improve" this file; its whole value is that it does not change.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, ClassVar, Hashable

from repro.adversary.base import Adversary
from repro.utils.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network import SelfHealingNetwork

__all__ = [
    "ScanMaxNodeAttack",
    "ScanNeighborOfMaxAttack",
    "ScanMinDegreeAttack",
    "ScanMaxDeltaNeighborAttack",
]

Node = Hashable


def _max_degree_node(network: "SelfHealingNetwork") -> Node | None:
    """Current maximum-degree node, smallest label on ties; None if empty."""
    g = network.graph
    best: Node | None = None
    best_key: tuple[int, object] | None = None
    for u in g.nodes():
        key = (-g.degree(u), u)
        if best_key is None or key < best_key:
            best_key = key
            best = u
    return best


class ScanMaxNodeAttack(Adversary):
    """Delete the current maximum-degree node (O(n) scan per round)."""

    name: ClassVar[str] = "scan-max-node"

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        return _max_degree_node(network)


class ScanNeighborOfMaxAttack(Adversary):
    """Delete a random neighbor of the max-degree node (O(n) scan)."""

    name: ClassVar[str] = "scan-neighbor-of-max"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng: random.Random = make_rng(seed)

    def reset(self, network: "SelfHealingNetwork") -> None:
        super().reset(network)
        self._rng = make_rng(self._seed)

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        hub = _max_degree_node(network)
        if hub is None:
            return None
        nbrs = sorted(network.graph.neighbors(hub))
        if not nbrs:
            return hub
        return self._rng.choice(nbrs)


class ScanMinDegreeAttack(Adversary):
    """Delete the current minimum-degree node (O(n) scan per round)."""

    name: ClassVar[str] = "scan-min-degree"

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        g = network.graph
        best: Node | None = None
        best_key: tuple[int, object] | None = None
        for u in g.nodes():
            key = (g.degree(u), u)
            if best_key is None or key < best_key:
                best_key = key
                best = u
        return best


class ScanMaxDeltaNeighborAttack(Adversary):
    """Delete a random neighbor of the max-δ node (O(n) scan per round)."""

    name: ClassVar[str] = "scan-neighbor-of-max-delta"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng: random.Random = make_rng(seed)

    def reset(self, network: "SelfHealingNetwork") -> None:
        super().reset(network)
        self._rng = make_rng(self._seed)

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        g = network.graph
        best: Node | None = None
        best_key: tuple[int, object] | None = None
        for u in g.nodes():
            key = (-network.delta(u), u)
            if best_key is None or key < best_key:
                best_key = key
                best = u
        if best is None:
            return None
        nbrs = sorted(g.neighbors(best))
        if not nbrs:
            return best
        return self._rng.choice(nbrs)
