"""Tests for the wave adversaries and their size schedules."""

from __future__ import annotations

import pytest

from repro.adversary import make_adversary
from repro.adversary.waves import (
    RandomWaveAttack,
    TargetedWaveAttack,
    constant_schedule,
    fraction_schedule,
    geometric_schedule,
    make_wave_schedule,
)
from repro.core.network import SelfHealingNetwork
from repro.core.registry import make_healer
from repro.errors import ConfigurationError
from repro.graph.generators import cycle_graph, preferential_attachment
from repro.api import run_campaign


class TestSchedules:
    def test_constant(self):
        s = constant_schedule(5)
        assert [s(i, 100) for i in range(4)] == [5, 5, 5, 5]

    def test_geometric(self):
        s = geometric_schedule(2, 2.0)
        assert [s(i, 1000) for i in range(5)] == [2, 4, 8, 16, 32]

    def test_geometric_floor_one(self):
        s = geometric_schedule(1, 0.5)
        assert s(10, 100) == 1

    def test_fraction(self):
        s = fraction_schedule(0.25)
        assert s(0, 100) == 25
        assert s(3, 7) == 2  # ceil(1.75)
        assert s(0, 1) == 1

    def test_make_schedule_coercions(self):
        assert make_wave_schedule(3)(0, 10) == 3
        assert make_wave_schedule(0.5)(0, 10) == 5
        assert make_wave_schedule(("constant", 4))(0, 10) == 4
        assert make_wave_schedule(("geometric", 1, 3.0))(2, 99) == 9
        assert make_wave_schedule(("fraction", 0.1))(0, 50) == 5
        f = lambda i, n: 7  # noqa: E731
        assert make_wave_schedule(f) is f

    @pytest.mark.parametrize(
        "bad", [0, -1, 1.5, 0.0, ("constant", 0), ("nope", 3), "x", True]
    )
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ConfigurationError):
            make_wave_schedule(bad)


class TestRandomWaveAttack:
    def test_deterministic_across_resets(self):
        def victims(seed):
            net = SelfHealingNetwork(
                preferential_attachment(60, 2, seed=1), make_healer("dash"),
                seed=1,
            )
            adv = RandomWaveAttack(("constant", 5), seed=seed)
            adv.reset(net)
            out = []
            while net.num_alive > 0:
                wave = adv.choose_wave(net)
                if not wave:
                    break
                out.append(tuple(wave))
                net.delete_batch_and_heal(wave)
            return out

        assert victims(3) == victims(3)
        assert victims(3) != victims(4)

    def test_clamps_to_survivors_and_terminates(self):
        net = SelfHealingNetwork(
            preferential_attachment(30, 2, seed=2), make_healer("dash"), seed=2
        )
        adv = RandomWaveAttack(("geometric", 4, 3.0), seed=0)
        adv.reset(net)
        while net.num_alive > 0:
            wave = adv.choose_wave(net)
            assert wave is not None
            assert len(wave) <= 30
            assert len(set(wave)) == len(wave)
            net.delete_batch_and_heal(wave)
        assert adv.choose_wave(net) is None
        assert adv.waves_launched >= 3

    def test_resyncs_after_out_of_band_deletions(self):
        net = SelfHealingNetwork(
            preferential_attachment(40, 2, seed=3), make_healer("dash"), seed=3
        )
        adv = RandomWaveAttack(("constant", 3), seed=1)
        adv.reset(net)
        net.delete_batch_and_heal(adv.choose_wave(net))
        # Deletions the adversary never saw:
        net.delete_batch_and_heal(sorted(net.graph.nodes())[:5])
        wave = adv.choose_wave(net)
        assert wave is not None
        assert all(net.graph.has_node(v) for v in wave)


class TestTargetedWaveAttack:
    def test_picks_top_degree_with_label_tiebreak(self):
        net = SelfHealingNetwork(
            preferential_attachment(50, 2, seed=4), make_healer("dash"), seed=4
        )
        adv = TargetedWaveAttack(("constant", 6))
        adv.reset(net)
        wave = adv.choose_wave(net)
        assert wave is not None and len(wave) == 6
        expected = sorted(
            net.graph.nodes(),
            key=lambda u: (-net.graph.degree(u), u),
        )[:6]
        assert wave == expected

    def test_tiebreak_on_degree_plateau(self):
        # Every cycle node has degree 2: pure label ordering.
        net = SelfHealingNetwork(cycle_graph(12), make_healer("dash"), seed=5)
        adv = TargetedWaveAttack(("constant", 4))
        adv.reset(net)
        assert adv.choose_wave(net) == [0, 1, 2, 3]

    def test_full_kill(self):
        res = run_campaign(
            preferential_attachment(80, 2, seed=6),
            make_healer("dash"),
            TargetedWaveAttack(("fraction", 0.2)),
            id_seed=6,
        )
        assert res.final_alive == 0
        assert res.deletions == 80
        assert res.values["waves"] > 1


class TestRegistryAndSimulator:
    def test_registry_names(self):
        assert isinstance(
            make_adversary("random-wave", schedule=4, seed=1), RandomWaveAttack
        )
        assert isinstance(make_adversary("targeted-wave"), TargetedWaveAttack)

    def test_wave_campaign_stop_alive_and_max_rounds(self):
        res = run_campaign(
            preferential_attachment(50, 2, seed=7),
            make_healer("dash"),
            RandomWaveAttack(("constant", 5), seed=7),
            id_seed=7,
            stop_alive=20,
        )
        assert res.final_alive == 20
        res = run_campaign(
            preferential_attachment(50, 2, seed=7),
            make_healer("dash"),
            RandomWaveAttack(("constant", 5), seed=7),
            id_seed=7,
            max_rounds=3,
        )
        assert res.values["waves"] == 3
        assert res.deletions == 15

    def test_wave_campaign_rejects_bad_config(self):
        g = preferential_attachment(20, 2, seed=8)
        with pytest.raises(ConfigurationError):
            run_campaign(
                g, make_healer("dash"), RandomWaveAttack(2), stop_alive=-1
            )
        with pytest.raises(ConfigurationError):
            run_campaign(
                g, make_healer("dash"), RandomWaveAttack(2), max_rounds=-1
            )
