"""Tests for the classic attack strategies."""

from __future__ import annotations

import random

import pytest

from repro.adversary.classic import (
    MaxDeltaNeighborAttack,
    MaxNodeAttack,
    MinDegreeAttack,
    NeighborOfMaxAttack,
    RandomAttack,
)
from repro.core.dash import Dash
from repro.core.network import SelfHealingNetwork
from repro.graph.generators import cycle_graph, path_graph, star_graph
from repro.graph.graph import Graph


def net_of(graph) -> SelfHealingNetwork:
    return SelfHealingNetwork(graph, Dash(), seed=0)


class TestMaxNode:
    def test_picks_hub(self):
        net = net_of(star_graph(6))
        adv = MaxNodeAttack()
        adv.reset(net)
        assert adv.choose_target(net) == 0

    def test_tie_break_smallest_label(self):
        net = net_of(path_graph(4))  # degrees: 1,2,2,1
        adv = MaxNodeAttack()
        adv.reset(net)
        assert adv.choose_target(net) == 1

    def test_empty_graph_returns_none(self):
        net = net_of(Graph())
        adv = MaxNodeAttack()
        adv.reset(net)
        assert adv.choose_target(net) is None


class TestNeighborOfMax:
    def test_targets_a_neighbor_of_hub(self):
        net = net_of(star_graph(6))
        adv = NeighborOfMaxAttack(seed=1)
        adv.reset(net)
        target = adv.choose_target(net)
        assert target in {1, 2, 3, 4, 5}

    def test_isolated_hub_targets_hub(self):
        g = Graph([0, 1])
        net = net_of(g)
        adv = NeighborOfMaxAttack(seed=1)
        adv.reset(net)
        assert adv.choose_target(net) in {0, 1}

    def test_deterministic_by_seed(self):
        picks_a = []
        picks_b = []
        for picks, seed in ((picks_a, 5), (picks_b, 5)):
            net = net_of(star_graph(10))
            adv = NeighborOfMaxAttack(seed=seed)
            adv.reset(net)
            for _ in range(5):
                picks.append(adv.choose_target(net))
        assert picks_a == picks_b

    def test_reset_rewinds(self):
        net = net_of(star_graph(10))
        adv = NeighborOfMaxAttack(seed=2)
        adv.reset(net)
        first = adv.choose_target(net)
        adv.reset(net)
        assert adv.choose_target(net) == first


class TestRandom:
    def test_only_live_targets(self):
        net = net_of(path_graph(10))
        adv = RandomAttack(seed=3)
        adv.reset(net)
        for _ in range(9):
            v = adv.choose_target(net)
            assert net.graph.has_node(v)
            net.delete_and_heal(v)
        assert net.num_alive == 1

    def test_empty_none(self):
        net = net_of(Graph())
        adv = RandomAttack(seed=0)
        adv.reset(net)
        assert adv.choose_target(net) is None


class TestMinDegree:
    def test_picks_leaf(self):
        net = net_of(star_graph(5))
        adv = MinDegreeAttack()
        adv.reset(net)
        assert adv.choose_target(net) == 1  # smallest-label leaf


ALL_ADVERSARIES = [
    lambda: MaxNodeAttack(),
    lambda: NeighborOfMaxAttack(seed=1),
    lambda: MinDegreeAttack(),
    lambda: MaxDeltaNeighborAttack(seed=1),
    lambda: RandomAttack(seed=1),
]


class TestEdgeCases:
    """Empty graphs, lone nodes, and degree plateaus — the regimes where
    the indexed queries' cursors and tie-breaks have no slack."""

    @pytest.mark.parametrize("make_adv", ALL_ADVERSARIES)
    def test_empty_graph_returns_none(self, make_adv):
        net = net_of(Graph())
        adv = make_adv()
        adv.reset(net)
        assert adv.choose_target(net) is None

    @pytest.mark.parametrize("make_adv", ALL_ADVERSARIES)
    def test_single_isolated_node_is_the_target(self, make_adv):
        net = net_of(Graph([42]))
        adv = make_adv()
        adv.reset(net)
        assert adv.choose_target(net) == 42

    @pytest.mark.parametrize("make_adv", ALL_ADVERSARIES)
    def test_exhaustion_after_last_node(self, make_adv):
        net = net_of(Graph([7]))
        adv = make_adv()
        adv.reset(net)
        net.delete_and_heal(adv.choose_target(net))
        assert adv.choose_target(net) is None

    def test_all_ties_plateau_max_and_min_agree(self):
        # Cycle: every node has degree 2, so max-node and min-degree are
        # decided purely by the smallest-label tie-break.
        net = net_of(cycle_graph(12))
        for adv in (MaxNodeAttack(), MinDegreeAttack()):
            adv.reset(net)
            assert adv.choose_target(net) == 0

    def test_all_ties_plateau_delta(self):
        # Fresh network: every δ is 0 — the max-δ node is the smallest
        # label (0), and the target one of its two ring neighbors.
        net = net_of(cycle_graph(12))
        adv = MaxDeltaNeighborAttack(seed=3)
        adv.reset(net)
        assert adv.choose_target(net) in {1, 11}

    def test_plateau_shrinks_consistently(self):
        # Deleting along a path keeps re-creating ties between the two
        # endpoints (degree 1); the smaller label must win every time.
        net = net_of(path_graph(6))
        adv = MinDegreeAttack()
        adv.reset(net)
        first = adv.choose_target(net)
        assert first == 0
        net.delete_and_heal(first)
        assert adv.choose_target(net) == 1


class TestRandomResync:
    def test_resync_after_batch_heal(self):
        """Batch waves delete nodes behind the adversary's back; the
        survivor list must resync instead of naming dead nodes."""
        net = net_of(star_graph(12))
        adv = RandomAttack(seed=4)
        adv.reset(net)
        v = adv.choose_target(net)
        net.delete_and_heal(v)
        rng = random.Random(4)
        while net.num_alive > 2:
            alive = sorted(net.graph.nodes())
            wave = rng.sample(alive, min(len(alive) - 1, 3))
            net.delete_batch_and_heal(wave)
            target = adv.choose_target(net)
            assert target is not None
            assert net.graph.has_node(target)

    def test_resync_then_normal_rounds_stay_live(self):
        net = net_of(path_graph(10))
        adv = RandomAttack(seed=9)
        adv.reset(net)
        net.delete_batch_and_heal([2, 5, 7])
        while net.num_alive > 0:
            target = adv.choose_target(net)
            assert net.graph.has_node(target)
            net.delete_and_heal(target)
        assert adv.choose_target(net) is None


class TestMaxDeltaNeighbor:
    def test_initially_targets_neighbor_of_smallest_label(self):
        net = net_of(path_graph(4))
        adv = MaxDeltaNeighborAttack(seed=0)
        adv.reset(net)
        # all δ = 0 → tie-break on label picks node 0; its only nbr is 1
        assert adv.choose_target(net) == 1

    def test_chases_delta(self):
        g = star_graph(6)
        net = net_of(g)
        net.delete_and_heal(0)  # creates a positive-δ node
        adv = MaxDeltaNeighborAttack(seed=0)
        adv.reset(net)
        deltas = net.deltas()
        hot = max(sorted(deltas), key=lambda u: deltas[u])
        target = adv.choose_target(net)
        assert target in net.graph.neighbors(hot) or target == hot
