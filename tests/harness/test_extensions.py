"""Tests for the extension experiments (capacity, topology matrix, waves)."""

from __future__ import annotations

import pytest

from repro.harness.extensions import (
    run_batch_waves,
    run_capacity_collapse,
    run_topology_matrix,
    run_wave_schedules,
)
from repro.sim.metrics import CapacityMetric


class TestCapacityMetricUnit:
    def test_rejects_negative_headroom(self):
        with pytest.raises(ValueError):
            CapacityMetric(headroom=-1)

    def test_no_collapse_reports_minus_one(self):
        from repro.adversary import RandomAttack
        from repro.core.dash import Dash
        from repro.graph.generators import preferential_attachment
        from repro.api import run_campaign

        g = preferential_attachment(30, 2, seed=0)
        res = run_campaign(
            g, Dash(), RandomAttack(seed=0), metrics=[CapacityMetric(50)]
        )
        assert res["first_collapse_step"] == -1.0
        assert res["survived_rounds"] == res.deletions

    def test_collapse_detected_for_naive_healer(self):
        from repro.adversary import NeighborOfMaxAttack
        from repro.core.naive import GraphHeal
        from repro.graph.generators import preferential_attachment
        from repro.api import run_campaign

        g = preferential_attachment(80, 2, seed=1)
        res = run_campaign(
            g,
            GraphHeal(),
            NeighborOfMaxAttack(seed=1),
            metrics=[CapacityMetric(2)],
        )
        assert res["first_collapse_step"] > 0


class TestCapacityCollapse:
    def test_dash_outlives_naive(self, tmp_path):
        fig = run_capacity_collapse(
            n=60, headrooms=(2,), repetitions=3, out_dir=tmp_path
        )
        assert fig.series["dash"][0] > fig.series["graph-heal"][0]
        assert fig.csv_path.exists()

    def test_survival_monotone_in_headroom(self):
        fig = run_capacity_collapse(
            n=60, headrooms=(1, 6), repetitions=3,
            healers=("graph-heal",),
        )
        assert fig.series["graph-heal"][0] <= fig.series["graph-heal"][1]


class TestTopologyMatrix:
    def test_all_topologies_within_bound(self, tmp_path):
        fig = run_topology_matrix(n=60, repetitions=2, out_dir=tmp_path)
        for i in range(len(fig.x_values)):
            assert fig.series["peak δ"][i] <= fig.series["bound"][i]
        assert "yes" in fig.table
        assert "NO" not in fig.table


class TestBatchWaves:
    def test_waves_stay_connected_and_bounded(self, tmp_path):
        import math

        fig = run_batch_waves(
            n=50, wave_sizes=(1, 3), repetitions=2, out_dir=tmp_path
        )
        assert "NO" not in fig.table
        for v in fig.series["peak δ (worst)"]:
            assert v <= 2 * 2 * math.log2(50)


class TestWaveSchedules:
    def test_all_schedules_stay_connected(self, tmp_path):
        fig = run_wave_schedules(n=60, repetitions=2, out_dir=tmp_path)
        assert "NO" not in fig.table
        assert fig.csv_path.exists()

    def test_fast_path_dominates(self):
        fig = run_wave_schedules(
            n=60, schedules=("constant-8",), repetitions=2
        )
        for row in fig.table.splitlines():
            if "|" not in row or "schedule" in row or "-+-" in row:
                continue
            cells = [c.strip() for c in row.strip("|").split("|")]
            fast, slow = int(cells[4]), int(cells[5])
            assert fast > slow
