"""Tests for the figure drivers (tiny parameterizations)."""

from __future__ import annotations

import math


from repro.harness import (
    FIGURES,
    run_ablation_components,
    run_ablation_order,
    run_fig8,
    run_fig9,
    run_fig10,
    run_theorem1,
    run_theorem2,
)


class TestFig8:
    def test_small_run_structure(self, tmp_path):
        fig = run_fig8(sizes=(12, 20), repetitions=2, out_dir=tmp_path)
        assert fig.name == "fig8"
        assert set(fig.series) >= {"dash", "sdash", "graph-heal"}
        assert fig.x_values == [12.0, 20.0]
        assert fig.csv_path is not None and fig.csv_path.exists()
        assert "n" in fig.table
        assert fig.chart

    def test_expected_ordering_hint(self):
        """Even at toy sizes graph-heal must not beat dash."""
        fig = run_fig8(sizes=(30,), repetitions=3)
        assert fig.series["graph-heal"][0] >= fig.series["dash"][0]


class TestFig9:
    def test_two_panels_from_one_sweep(self):
        a, b = run_fig9(sizes=(12, 20), repetitions=2)
        assert a.name == "fig9a"
        assert b.name == "fig9b"
        assert a.results is b.results  # sweep reused
        for fig in (a, b):
            assert set(fig.series) >= {"dash", "graph-heal"}

    def test_id_changes_below_envelope(self):
        a, _ = run_fig9(sizes=(30,), repetitions=3)
        for healer, ys in a.series.items():
            assert ys[0] <= 2 * math.log(30) + 1, healer


class TestFig10:
    def test_structure(self):
        fig = run_fig10(sizes=(14,), repetitions=2, stretch_period=2)
        assert fig.name == "fig10"
        assert "dash" in fig.series
        assert all(v >= 1.0 for v in fig.series["dash"])


class TestTheorem1:
    def test_bounds_hold(self):
        fig = run_theorem1(sizes=(20, 40), repetitions=3)
        xs = fig.x_values
        for i, n in enumerate(xs):
            assert (
                fig.series["measured max δ"][i] <= fig.series["2log2(n)"][i]
            )
            assert (
                fig.series["measured idΔ"][i] <= fig.series["2ln(n)"][i] + 1
            )


class TestTheorem2:
    def test_exact_forced_delta(self, tmp_path):
        fig = run_theorem2(depths=(2, 3), max_increase=1, out_dir=tmp_path)
        assert fig.series["bounded(M=1) forced δ"] == [2.0, 3.0]
        assert fig.csv_path.exists()

    def test_higher_bound_healer(self):
        fig = run_theorem2(depths=(2,), max_increase=2)
        assert fig.series["bounded(M=2) forced δ"][0] >= 2.0


class TestAblations:
    def test_order_ablation_runs(self):
        fig = run_ablation_order(sizes=(16,), repetitions=2)
        assert set(
            fig.series
        ) == {"dash", "dash-random-order", "binary-tree-heal"}

    def test_components_ablation_runs(self):
        fig = run_ablation_components(sizes=(16,), repetitions=2)
        assert set(fig.series) == {"dash", "graph-heal-delta"}


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(FIGURES) == {
            "fig8",
            "fig9",
            "fig10",
            "theorem1",
            "theorem2",
            "ablation-order",
            "ablation-components",
            "capacity",
            "topology-matrix",
            "batch-waves",
            "wave-schedules",
        }
