"""Unit tests for the shared figure plumbing."""

from __future__ import annotations


from repro.harness.common import FigureResult, build_figure, series_table
from repro.sim.experiment import ExperimentSpec
from repro.sim.results import ResultSet


class TestSeriesTable:
    def test_columns_in_order(self):
        out = series_table(
            "n", [10, 20], {"a": [1.0, 2.0]}, extra={"env": [5.0, 6.0]}
        )
        lines = out.splitlines()
        header = next(ln for ln in lines if "| n" in ln)
        assert header.index("a") < header.index("env")
        assert "2.000" in out

    def test_title(self):
        out = series_table("n", [1], {"s": [0.0]}, title="T8")
        assert "T8" in out


class TestFigureResult:
    def test_summary_includes_table_and_chart(self):
        fig = FigureResult(
            name="f", description="d", x_values=[1.0], series={"s": [2.0]}
        )
        fig.table = "TBL"
        fig.chart = "CHT"
        s = fig.summary()
        assert "== f: d ==" in s and "TBL" in s and "CHT" in s


class TestBuildFigure:
    def test_reuses_supplied_results(self):
        """Passing precomputed results skips the sweep entirely."""
        rs = ResultSet()
        for size in (10, 20):
            for healer in ("dash",):
                rs.add(
                    {"size": size, "healer": healer, "rep": 0},
                    {"v": float(size)},
                )
        spec = ExperimentSpec(
            name="x", sizes=(10, 20), healers=("dash",), repetitions=1
        )
        fig = build_figure(
            name="x",
            description="reuse",
            spec=spec,
            value="v",
            results=rs,
        )
        assert fig.series["dash"] == [10.0, 20.0]
        assert fig.results is rs

    def test_missing_cells_become_nan(self):
        rs = ResultSet()
        rs.add({"size": 10, "healer": "dash", "rep": 0}, {"v": 1.0})
        rs.add({"size": 20, "healer": "line-heal", "rep": 0}, {"v": 2.0})
        spec = ExperimentSpec(
            name="x", sizes=(10, 20), healers=("dash", "line-heal"),
            repetitions=1,
        )
        fig = build_figure(
            name="x", description="gaps", spec=spec, value="v", results=rs
        )
        assert fig.series["dash"][0] == 1.0
        assert fig.series["dash"][1] != fig.series["dash"][1]  # nan

    def test_csv_written(self, tmp_path):
        rs = ResultSet()
        rs.add({"size": 10, "healer": "dash", "rep": 0}, {"v": 1.0})
        spec = ExperimentSpec(
            name="x", sizes=(10,), healers=("dash",), repetitions=1
        )
        fig = build_figure(
            name="x", description="csv", spec=spec, value="v",
            results=rs, out_dir=tmp_path,
        )
        assert (tmp_path / "x.csv").exists()
        assert (tmp_path / "x_raw.csv").exists()
