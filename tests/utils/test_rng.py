"""Tests for deterministic RNG plumbing."""

from __future__ import annotations

import pytest

from repro.utils.rng import (
    choice_weighted,
    derive_seed,
    make_rng,
    rng_state_from_json,
    rng_state_to_json,
    spawn_seeds,
)


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7)
        b = make_rng(7)
        assert [
            a.random() for _ in range(10)
        ] == [b.random() for _ in range(10)]

    def test_different_seed_different_stream(self):
        assert make_rng(1).random() != make_rng(2).random()


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5, "a", 1) == derive_seed(5, "a", 1)

    def test_label_sensitivity(self):
        base = derive_seed(5, "a", 1)
        assert derive_seed(5, "a", 2) != base
        assert derive_seed(5, "b", 1) != base
        assert derive_seed(6, "a", 1) != base

    def test_range(self):
        for i in range(50):
            s = derive_seed(123, i)
            assert 0 <= s < 2**63

    def test_stable_across_processes(self):
        # sha256-based derivation must not depend on PYTHONHASHSEED;
        # pin a golden value so accidental hash() usage is caught.
        assert derive_seed(0, "x") == derive_seed(0, "x")
        assert isinstance(derive_seed(0, "x"), int)


class TestSpawnSeeds:
    def test_count(self):
        assert len(spawn_seeds(1, 10)) == 10

    def test_unique(self):
        seeds = spawn_seeds(1, 100)
        assert len(set(seeds)) == 100

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_empty(self):
        assert spawn_seeds(1, 0) == []

    def test_label_namespacing(self):
        assert spawn_seeds(1, 5, "x") != spawn_seeds(1, 5, "y")


class TestRngStateJson:
    """The checkpoint protocol's RNG freeze/thaw (also used by the
    distributed SyncEngine)."""

    def test_round_trip_resumes_identical_stream(self):
        a = make_rng(99)
        [a.random() for _ in range(137)]  # advance mid-stream
        payload = rng_state_to_json(a)
        b = rng_state_from_json(payload)
        assert [a.random() for _ in range(50)] == [
            b.random() for _ in range(50)
        ]

    def test_survives_json_serialization(self):
        import json

        a = make_rng(5)
        a.gauss(0, 1)  # populate gauss_next so the odd field is exercised
        payload = json.loads(json.dumps(rng_state_to_json(a)))
        b = rng_state_from_json(payload)
        assert a.getstate() == b.getstate()

    def test_restore_into_existing_rng(self):
        a = make_rng(1)
        [a.random() for _ in range(10)]
        b = make_rng(2)
        out = rng_state_from_json(rng_state_to_json(a), b)
        assert out is b
        assert b.random() == a.random()

    def test_payload_shape(self):
        payload = rng_state_to_json(make_rng(0))
        assert set(payload) == {"version", "state", "gauss_next"}
        assert isinstance(payload["state"], list)

    def test_malformed_payload_rejected(self):
        with pytest.raises(ValueError, match="malformed RNG state"):
            rng_state_from_json({"version": 3})
        with pytest.raises(ValueError, match="malformed RNG state"):
            rng_state_from_json(
                {"version": 3, "state": 7, "gauss_next": None}
            )


class TestChoiceWeighted:
    def test_respects_zero_weight(self):
        rng = make_rng(0)
        for _ in range(50):
            assert choice_weighted(rng, ["a", "b"], [1.0, 0.0]) == "a"

    def test_deterministic(self):
        a = [choice_weighted(make_rng(3), "abc", [1, 2, 3]) for _ in range(5)]
        b = [choice_weighted(make_rng(3), "abc", [1, 2, 3]) for _ in range(5)]
        assert a == b
