"""Tests for ASCII chart rendering."""

from __future__ import annotations

import pytest

from repro.utils.ascii_chart import ascii_line_chart


class TestAsciiLineChart:
    def test_basic_render(self):
        out = ascii_line_chart([1, 2, 3], {"s": [1.0, 2.0, 3.0]})
        assert "s" in out  # legend
        assert "o" in out  # first mark

    def test_title(self):
        out = ascii_line_chart([1, 2], {"a": [0, 1]}, title="T")
        assert out.splitlines()[0] == "T"

    def test_multiple_series_distinct_marks(self):
        out = ascii_line_chart([1, 2], {"a": [0, 1], "b": [1, 0]})
        assert "o = a" in out
        assert "x = b" in out

    def test_constant_series_ok(self):
        out = ascii_line_chart([1, 2], {"flat": [5.0, 5.0]})
        assert "flat" in out

    def test_single_point(self):
        out = ascii_line_chart([1], {"p": [2.0]})
        assert "p" in out

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ascii_line_chart([1, 2], {"s": [1.0]})

    def test_empty_x_raises(self):
        with pytest.raises(ValueError):
            ascii_line_chart([], {})

    def test_no_series_raises(self):
        with pytest.raises(ValueError):
            ascii_line_chart([1], {})

    def test_dimensions(self):
        out = ascii_line_chart([1, 2], {"a": [0, 1]}, width=20, height=5)
        plot_lines = [ln for ln in out.splitlines() if "|" in ln]
        assert len(plot_lines) == 5

    def test_nan_points_skipped(self):
        nan = float("nan")
        out = ascii_line_chart([1, 2, 3], {"a": [1.0, nan, 3.0]})
        assert "a" in out  # renders without error

    def test_all_nan_raises(self):
        nan = float("nan")
        with pytest.raises(ValueError, match="finite"):
            ascii_line_chart([1], {"a": [nan]})
