"""Tests for table formatting and CSV output."""

from __future__ import annotations

import csv

import pytest

from repro.utils.tables import format_table, write_csv


class TestFormatTable:
    def test_contains_cells(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        assert "a" in out and "bb" in out
        assert "30" in out
        assert "2.500" in out  # default float format

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.startswith("My Table\n")

    def test_custom_float_format(self):
        out = format_table(["x"], [[1.23456]], float_fmt=".1f")
        assert "1.2" in out and "1.235" not in out

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out

    def test_column_alignment(self):
        out = format_table(["col"], [["x"], ["longer"]])
        lines = [ln for ln in out.splitlines() if ln.startswith("|")]
        widths = {len(ln) for ln in lines}
        assert len(widths) == 1  # all box rows same width


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        p = write_csv(tmp_path / "sub" / "t.csv", ["a", "b"], [[1, 2], [3, 4]])
        assert p.exists()
        with p.open() as fh:
            rows = list(csv.reader(fh))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_creates_parent_dirs(self, tmp_path):
        p = write_csv(tmp_path / "x" / "y" / "z.csv", ["h"], [])
        assert p.exists()
