"""Tests for the statistics helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import (
    Summary,
    confidence_interval,
    mean,
    sample_std,
    summarize,
)


class TestMean:
    def test_basic(self):
        assert mean([1, 2, 3]) == 2.0

    def test_single(self):
        assert mean([4.5]) == 4.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestSampleStd:
    def test_constant_is_zero(self):
        assert sample_std([3, 3, 3]) == 0.0

    def test_short_sequences(self):
        assert sample_std([]) == 0.0
        assert sample_std([1.0]) == 0.0

    def test_known_value(self):
        # var of [2, 4] with n-1 = (1+1)/1 = 2
        assert sample_std([2, 4]) == pytest.approx(math.sqrt(2))

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_nonnegative(self, xs):
        assert sample_std(xs) >= 0.0


class TestConfidenceInterval:
    def test_contains_mean(self):
        lo, hi = confidence_interval([1, 2, 3, 4, 5])
        assert lo <= 3 <= hi

    def test_zero_width_for_constant(self):
        lo, hi = confidence_interval([7, 7, 7])
        assert lo == hi == 7

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            confidence_interval([])


class TestSummarize:
    def test_fields(self):
        s = summarize([1, 2, 3])
        assert isinstance(s, Summary)
        assert s.count == 3
        assert s.mean == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.ci_low <= s.mean <= s.ci_high

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=40))
    def test_min_le_mean_le_max(self, xs):
        s = summarize(xs)
        assert s.minimum - 1e-9 <= s.mean <= s.maximum + 1e-9
