"""Unit tests for the churn adversaries: determinism, checkpointing,
constructor validation, and the trace replayer's fail-fast parsing."""

from __future__ import annotations

import pytest

from repro.adversary import ADVERSARIES, make_adversary
from repro.churn.adversaries import (
    ChurnAdversary,
    TraceChurnAdversary,
    load_churn_ops,
)
from repro.core.network import SelfHealingNetwork
from repro.core.registry import HEALERS
from repro.errors import ConfigurationError
from repro.graph.generators import GENERATORS


def _network(n=12, seed=3):
    graph = GENERATORS.make("erdos_renyi:p=0.25", seed=seed, force={"n": n})
    return SelfHealingNetwork(graph, HEALERS.make("dash"), seed=seed)


def _drain(adversary, network):
    rounds = []
    while True:
        ops = adversary.choose_round(network)
        if not ops:
            return rounds
        rounds.append(list(ops))
        for op in ops:
            if op[0] == "add":
                network.insert_and_heal(op[1], op[2])
            else:
                network.delete_and_heal(op[1])


# ----------------------------------------------------------------------
# ChurnAdversary
# ----------------------------------------------------------------------

def test_registered_specs_construct():
    assert isinstance(make_adversary("churn"), ChurnAdversary)
    adv = make_adversary(
        "churn:rate=1.5,lifetime=pareto,mean=4,shape=2.1,attach=3,rounds=9"
    )
    assert (adv.rate, adv.lifetime, adv.mean, adv.shape) == (
        1.5, "pareto", 4.0, 2.1
    )
    assert (adv.attach, adv.rounds) == (3, 9)
    assert "churn" in ADVERSARIES.names()
    assert "trace-churn" in ADVERSARIES.names()


@pytest.mark.parametrize(
    "kwargs,match",
    [
        ({"rate": -0.1}, "rate"),
        ({"lifetime": "uniform"}, "lifetime"),
        ({"mean": 0}, "mean"),
        ({"mean": -2.0}, "mean"),
        ({"lifetime": "pareto", "shape": 1.0}, "shape"),
        ({"attach": -1}, "attach"),
        ({"rounds": -5}, "rounds"),
    ],
)
def test_constructor_validation(kwargs, match):
    with pytest.raises(ConfigurationError, match=match):
        ChurnAdversary(**kwargs)


@pytest.mark.parametrize("lifetime", ["exp", "pareto"])
def test_same_seed_same_schedule(lifetime):
    spec = f"churn:rate=1.5,lifetime={lifetime},mean=5,rounds=20"
    schedules = []
    for _ in range(2):
        network = _network()
        adversary = make_adversary(spec, seed=7)
        adversary.reset(network)
        schedules.append(_drain(adversary, network))
    assert schedules[0] == schedules[1]
    assert schedules[0]  # non-trivial

    network = _network()
    other = make_adversary(spec, seed=8)
    other.reset(network)
    assert _drain(other, network) != schedules[0]


def test_rounds_budget_limits_the_campaign():
    network = _network()
    adversary = ChurnAdversary(rate=1.0, mean=4.0, rounds=6, seed=1)
    adversary.reset(network)
    rounds = _drain(adversary, network)
    assert 0 < len(rounds) <= 6
    assert adversary.choose_round(network) is None  # budget stays spent


def test_rate_zero_is_a_pure_death_process():
    network = _network(n=8)
    adversary = ChurnAdversary(rate=0.0, mean=3.0, rounds=None, seed=2)
    adversary.reset(network)
    rounds = _drain(adversary, network)
    ops = [op for round_ops in rounds for op in round_ops]
    assert ops and all(op[0] == "delete" for op in ops)
    assert len(ops) == 8  # the whole initial population drains
    assert network.num_alive == 0


def test_joiner_never_dies_in_its_arrival_round():
    network = _network()
    adversary = ChurnAdversary(rate=2.0, mean=1.0, rounds=24, seed=5)
    adversary.reset(network)
    for round_ops in _drain(adversary, network):
        born = {op[1] for op in round_ops if op[0] == "add"}
        died = {op[1] for op in round_ops if op[0] == "delete"}
        assert not born & died


def test_export_import_resumes_identically():
    """Stop a churn run mid-way, snapshot, rebuild a fresh adversary from
    the snapshot: the remainder must match the uninterrupted run op for
    op (the property SIGKILL recovery rests on)."""
    spec = "churn:rate=1.5,lifetime=pareto,mean=5,rounds=18"

    network_a = _network()
    full_adv = make_adversary(spec, seed=11)
    full_adv.reset(network_a)
    prefix = []
    for _ in range(5):
        ops = full_adv.choose_round(network_a)
        assert ops
        prefix.append(list(ops))
        for op in ops:
            if op[0] == "add":
                network_a.insert_and_heal(op[1], op[2])
            else:
                network_a.delete_and_heal(op[1])
    state = full_adv.export_state()
    tail_full = _drain(full_adv, network_a)

    # Replay the prefix on an identical network, then restore.
    network_b = _network()
    resumed = make_adversary(spec, seed=999)  # seed must not matter
    resumed.reset(network_b)
    for round_ops in prefix:
        for op in round_ops:
            if op[0] == "add":
                network_b.insert_and_heal(op[1], op[2])
            else:
                network_b.delete_and_heal(op[1])
    resumed.import_state(state)
    assert _drain(resumed, network_b) == tail_full


def test_export_state_is_json_clean():
    import json

    network = _network()
    adversary = ChurnAdversary(rate=1.0, mean=4.0, seed=3)
    adversary.reset(network)
    for _ in range(3):
        adversary.choose_round(network)
    state = adversary.export_state()
    assert json.loads(json.dumps(state)) == state  # tuples would differ


# ----------------------------------------------------------------------
# TraceChurnAdversary / load_churn_ops
# ----------------------------------------------------------------------

def test_trace_replays_file_verbatim(tmp_path):
    path = tmp_path / "sched.jsonl"
    path.write_text(
        '[["delete", 0]]\n'
        '\n'  # blank lines are skipped
        '[["add", 100, [1, 2]], ["delete", 1]]\n'
    )
    adversary = TraceChurnAdversary(path)
    network = _network()
    adversary.reset(network)
    assert adversary.choose_round(network) == [("delete", 0)]
    assert adversary.choose_round(network) == [
        ("add", 100, (1, 2)), ("delete", 1)
    ]
    assert adversary.choose_round(network) is None

    adversary.import_state({**adversary.export_state(), "pos": 1})
    assert adversary.choose_round(network)[0] == ("add", 100, (1, 2))


def test_missing_trace_fails_at_construction(tmp_path):
    with pytest.raises(ConfigurationError, match="cannot read"):
        TraceChurnAdversary(tmp_path / "nope.jsonl")


@pytest.mark.parametrize(
    "line",
    [
        "not json",
        '{"round": 1}',              # not an array
        '[["delete"]]',              # missing victim
        '[["add", 1]]',              # missing targets
        '[["add", 1, 2]]',           # targets not a list
        '[["rename", 1, [2]]]',      # unknown kind
    ],
)
def test_malformed_trace_lines_fail_fast_with_location(tmp_path, line):
    path = tmp_path / "bad.jsonl"
    path.write_text('[["delete", 0]]\n' + line + "\n")
    with pytest.raises(ConfigurationError, match=r"bad\.jsonl:2"):
        load_churn_ops(path)
    with pytest.raises(ConfigurationError, match=r"bad\.jsonl:2"):
        TraceChurnAdversary(path)
