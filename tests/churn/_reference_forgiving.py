"""Direct-from-the-dissertation reference healers for differential tests.

Independent re-implementations of Forgiving Tree / Forgiving Graph from
their textual descriptions (heir-rooted balanced binary will for a
deletion; single-leaf / attach-plus-bridge joins), sharing **no layout
code** with :mod:`repro.churn.healers` — participants, the heir, the
1-indexed heap edges, and the bridge representative are all recomputed
from the raw snapshot fields. The differential suite runs identical
churn schedules through the production healer and this reference and
asserts the full heal-event streams match exactly.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import (
    Healer,
    InsertionPlan,
    InsertionSnapshot,
    NeighborhoodSnapshot,
    ReconnectionPlan,
)


def _reference_participants(snapshot: NeighborhoodSnapshot) -> list:
    """UN(v,G) ∪ N(v,G′), recomputed from scratch: one minimum-initial-ID
    representative per foreign component label (ascending label), then
    the G′-neighbors ascending by initial ID."""
    rep_by_label: dict = {}
    for u in sorted(snapshot.g_neighbors, key=repr):
        if u in snapshot.gprime_neighbors:
            continue
        label = snapshot.labels[u]
        if label == snapshot.deleted_label:
            continue
        best = rep_by_label.get(label)
        if best is None or snapshot.initial_ids[u] < snapshot.initial_ids[best]:
            rep_by_label[label] = u
    un = [rep_by_label[label] for label in sorted(rep_by_label)]
    gp = sorted(
        snapshot.gprime_neighbors, key=lambda u: snapshot.initial_ids[u]
    )
    return un + gp


def _reference_heir_tree(snapshot: NeighborhoodSnapshot) -> ReconnectionPlan:
    """The FT will, executed: the least-burdened participant (minimum
    (δ, initial ID)) replaces the deleted node at the root; everyone
    else fills the complete binary tree left-to-right in initial-ID
    order. Heap edges via the 1-indexed parent formula p → p//2."""
    parts = _reference_participants(snapshot)
    if len(parts) < 2:
        return ReconnectionPlan(
            participants=tuple(parts),
            edges=(),
            kind="none",
            component_safe=True,
        )
    heir = min(
        parts, key=lambda u: (snapshot.delta[u], snapshot.initial_ids[u])
    )
    rest = sorted(
        (u for u in parts if u != heir),
        key=lambda u: snapshot.initial_ids[u],
    )
    order = [heir] + rest
    edges = [
        (order[p // 2 - 1], order[p - 1]) for p in range(2, len(order) + 1)
    ]
    return ReconnectionPlan(
        participants=tuple(order),
        edges=tuple(edges),
        kind="binary-tree",
        component_safe=True,
    )


def _least_loaded(snapshot: InsertionSnapshot):
    return min(
        snapshot.targets,
        key=lambda u: (snapshot.degree[u], snapshot.initial_ids[u]),
    )


class ReferenceForgivingTree(Healer):
    """FT from the text: heir-rooted will + one leaf edge per join."""

    name: ClassVar[str] = "ref-forgiving-tree"

    def plan(self, snapshot: NeighborhoodSnapshot) -> ReconnectionPlan:
        return _reference_heir_tree(snapshot)

    def insertion_plan(self, snapshot: InsertionSnapshot) -> InsertionPlan:
        if not snapshot.targets:
            return InsertionPlan(edges=(), heal_edges=(), kind="none")
        edge = (snapshot.node, _least_loaded(snapshot))
        return InsertionPlan(edges=(edge,), heal_edges=(edge,), kind="leaf")


class ReferenceForgivingGraph(Healer):
    """FG from the text: FT deletions; joins attach to the least-loaded
    target and bridge to (at most) one foreign component."""

    name: ClassVar[str] = "ref-forgiving-graph"

    def plan(self, snapshot: NeighborhoodSnapshot) -> ReconnectionPlan:
        return _reference_heir_tree(snapshot)

    def insertion_plan(self, snapshot: InsertionSnapshot) -> InsertionPlan:
        if not snapshot.targets:
            return InsertionPlan(edges=(), heal_edges=(), kind="none")
        primary = _least_loaded(snapshot)
        home = snapshot.labels[primary]
        rep_by_label: dict = {}
        for u in sorted(snapshot.targets, key=repr):
            label = snapshot.labels[u]
            if label == home:
                continue
            best = rep_by_label.get(label)
            if (
                best is None
                or snapshot.initial_ids[u] < snapshot.initial_ids[best]
            ):
                rep_by_label[label] = u
        edges = [(snapshot.node, primary)]
        kind = "leaf"
        if rep_by_label:
            edges.append((snapshot.node, rep_by_label[min(rep_by_label)]))
            kind = "bridge"
        return InsertionPlan(
            edges=tuple(edges), heal_edges=tuple(edges), kind=kind
        )
