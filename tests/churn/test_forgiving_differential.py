"""Differential tests: Forgiving Tree / Forgiving Graph vs. references.

The production healers must produce heal-event streams *identical* to
the independent direct-from-the-dissertation references in
``_reference_forgiving.py``, across ≥4 topologies × ≥2 churn schedules —
and every insertion must respect the per-node degree-increase bound that
is the whole point of the algorithms (≤1 new edge per join for FT, ≤2
for FG, each pre-existing node gaining at most one of them).
"""

from __future__ import annotations

import pytest

from repro.adversary import make_adversary
from repro.churn.healers import ForgivingGraph, ForgivingTree
from repro.core.network import SelfHealingNetwork
from repro.graph.generators import GENERATORS
from repro.sim.engine import run_campaign

from _reference_forgiving import (
    ReferenceForgivingGraph,
    ReferenceForgivingTree,
)

#: ≥4 topologies: tree, sparse random, lattice, hub-heavy scale-free
TOPOLOGIES = [
    ("random_tree", {}),
    ("erdos_renyi", {"p": 0.12}),
    ("grid", {"rows": 6, "cols": 7}),
    ("preferential_attachment", {"m": 2}),
]

#: ≥2 churn schedules: memoryless mid-rate and heavy-tailed high-rate
SCHEDULES = [
    "churn:rate=1.0,lifetime=exp,mean=6,rounds=36",
    "churn:rate=2.0,lifetime=pareto,mean=4,shape=2.2,rounds=36",
]

PAIRS = [
    (ForgivingTree, ReferenceForgivingTree, 1),
    (ForgivingGraph, ReferenceForgivingGraph, 2),
]


def _make_graph(gen_name, params, seed=17):
    force = {"n": 42} if "rows" not in params else {}
    return GENERATORS.make(
        gen_name, seed=seed, overrides=dict(params), force=force
    )


@pytest.mark.parametrize("gen_name,params", TOPOLOGIES)
@pytest.mark.parametrize("schedule", SCHEDULES)
@pytest.mark.parametrize("real_cls,ref_cls,max_edges", PAIRS)
def test_forgiving_matches_reference(
    gen_name, params, schedule, real_cls, ref_cls, max_edges
):
    """Identical churn schedule + identical initial graph ⇒ identical
    heal-event streams (full HealEvent dataclass equality)."""

    def run(healer):
        return run_campaign(
            _make_graph(gen_name, params),
            healer,
            make_adversary(schedule, seed=23),
            id_seed=31,
            keep_events=True,
            check_invariants=True,
        )

    real = run(real_cls())
    ref = run(ref_cls())

    assert real.insertions > 0 and real.deletions > 0  # schedule is live
    assert len(real.events) == len(ref.events)
    for i, (a, b) in enumerate(zip(real.events, ref.events)):
        assert a == b, f"event {i} diverged:\n  real: {a}\n  ref:  {b}"
    assert (real.deletions, real.insertions, real.peak_delta) == (
        ref.deletions, ref.insertions, ref.peak_delta
    )
    assert real.values == ref.values


@pytest.mark.parametrize("gen_name,params", TOPOLOGIES)
@pytest.mark.parametrize("schedule", SCHEDULES)
@pytest.mark.parametrize("real_cls,_ref_cls,max_edges", PAIRS)
def test_insertion_degree_bound_every_round(
    gen_name, params, schedule, real_cls, _ref_cls, max_edges
):
    """Drive the network op-by-op and assert the O(1) degree-increase
    bound after *every* insertion: the joiner gains ≤ ``max_edges``
    edges, each pre-existing node gains ≤ 1, and nodes untouched by the
    join do not move at all."""
    network = SelfHealingNetwork(
        _make_graph(gen_name, params), real_cls(), seed=31
    )
    adversary = make_adversary(schedule, seed=23)
    adversary.reset(network)

    inserts = 0
    while True:
        ops = adversary.choose_round(network)
        if not ops:
            break
        for op in ops:
            if op[0] == "delete":
                network.delete_and_heal(op[1])
                continue
            _, node, targets = op
            before = {
                u: network.graph.degree(u) for u in network.graph.nodes()
            }
            event = network.insert_and_heal(node, targets)
            inserts += 1
            assert event.action == "insert"
            assert len(event.new_edges) <= max_edges
            assert len(set(event.new_edges)) == len(event.new_edges)
            assert network.graph.degree(node) == len(event.new_edges)
            touched = {u for edge in event.new_edges for u in edge}
            assert all(node in edge for edge in event.new_edges)
            for u, deg in before.items():
                gain = network.graph.degree(u) - deg
                assert gain == (1 if u in touched else 0), (
                    f"join of {node!r} moved degree of {u!r} by {gain}"
                )
    assert inserts > 0  # the schedule actually exercised the bound


def test_forgiving_graph_bridges_components():
    """FG's distinguishing behaviour: a join that announces targets in
    different components bridges them (kind='bridge', 3-way merge of
    {joiner, A, B}); FT on the identical join keeps its single edge and
    merges only {joiner, A}. Constructed: two disjoint triangles, one
    join naming a peer on each side."""
    from repro.churn.trace import ScriptedChurn
    from repro.graph.graph import Graph

    def two_triangles():
        g = Graph(range(6))
        for a, b in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]:
            g.add_edge(a, b)
        return g

    result = run_campaign(
        two_triangles(),
        ForgivingGraph(),
        ScriptedChurn([[("add", 10, (0, 3))]]),
        id_seed=1,
        keep_events=True,
        check_invariants=True,
    )
    (event,) = result.events
    assert event.action == "insert"
    assert event.plan_kind == "bridge"
    assert len(event.new_edges) == 2
    assert event.components_merged == 3  # joiner + both triangles

    result_ft = run_campaign(
        two_triangles(),
        ForgivingTree(),
        ScriptedChurn([[("add", 10, (0, 3))]]),
        id_seed=1,
        keep_events=True,
        check_invariants=True,
    )
    (event_ft,) = result_ft.events
    assert event_ft.plan_kind == "leaf"
    assert len(event_ft.new_edges) == 1
    assert event_ft.components_merged == 2  # joiner + one triangle only
