"""Record/replay tests for churn traces: save/load round-trips,
bit-for-bit replay verification, divergence detection, healer swaps, and
the JSONL hand-off to the ``trace-churn`` adversary."""

from __future__ import annotations

import pytest

from repro.adversary import make_adversary
from repro.churn.trace import (
    ChurnTraceRecorder,
    load_churn_trace,
    replay_churn_trace,
    save_churn_schedule,
    save_churn_trace,
)
from repro.core.registry import HEALERS
from repro.errors import SimulationError
from repro.graph.generators import GENERATORS
from repro.sim.engine import run_campaign

HEALER = "forgiving-graph"
SCHEDULE = "churn:rate=1.5,lifetime=exp,mean=5,rounds=20"


def _graph(seed=9):
    return GENERATORS.make("erdos_renyi:p=0.2", seed=seed, force={"n": 16})


def _record(tmp_path=None):
    graph = _graph()
    recorder = ChurnTraceRecorder(graph, HEALER, id_seed=4)
    result = run_campaign(
        graph,
        HEALERS.make(HEALER),
        make_adversary(SCHEDULE, seed=6),
        id_seed=4,
        metrics=[recorder],
        keep_events=True,
    )
    return recorder.trace, result


def test_recorder_captures_every_event():
    trace, result = _record()
    assert len(trace.schedule) == len(result.events)
    assert len(trace.fingerprints) == len(result.events)
    assert result.values["trace_rounds"] == float(len(result.events))
    actions = {fp[0] for fp in trace.fingerprints}
    assert actions == {"insert", "delete"}  # a genuinely mixed campaign
    # Each recorded round carries exactly one op, in event order.
    for round_ops, event in zip(trace.schedule, result.events):
        (op,) = round_ops
        kind = "add" if event.action == "insert" else "delete"
        assert op[0] == kind and op[1] == event.deleted


def test_save_load_round_trip(tmp_path):
    trace, _ = _record()
    path = save_churn_trace(trace, tmp_path / "t.json")
    loaded = load_churn_trace(path)
    assert loaded == trace


def test_load_rejects_non_trace_files(tmp_path):
    path = tmp_path / "x.json"
    path.write_text('{"format": "something-else"}')
    with pytest.raises(SimulationError, match="not a repro churn trace"):
        load_churn_trace(path)


def test_replay_reproduces_fingerprints_bit_for_bit():
    trace, original = _record()
    replayed = replay_churn_trace(trace)  # raises on any divergence
    assert len(replayed.events) == len(original.events)
    assert replayed.events == original.events
    assert replayed.insertions == original.insertions
    assert replayed.peak_delta == original.peak_delta


def test_replay_detects_tampered_fingerprint():
    trace, _ = _record()
    trace.fingerprints[3][2] += 1  # corrupt one num_edges
    with pytest.raises(SimulationError, match="diverged at round 4"):
        replay_churn_trace(trace)


def test_replay_detects_truncated_trace():
    trace, _ = _record()
    trace.fingerprints.pop()
    with pytest.raises(SimulationError, match="events"):
        replay_churn_trace(trace)


def test_healer_swap_replays_same_churn():
    """The recorded schedule replays against a different healer: same
    ops, same insertion count, no fingerprint check (plans differ)."""
    trace, original = _record()
    swapped = replay_churn_trace(trace, healer_name="dash")
    assert swapped.insertions == original.insertions
    assert swapped.deletions == original.deletions
    assert [e.action for e in swapped.events] == [
        e.action for e in original.events
    ]
    # And the per-event victims/joiners line up even though plans differ.
    assert [e.deleted for e in swapped.events] == [
        e.deleted for e in original.events
    ]


def test_schedule_jsonl_feeds_trace_churn_adversary(tmp_path):
    """save_churn_schedule → trace-churn adversary → identical events:
    the on-disk JSONL hand-off loses nothing."""
    trace, original = _record()
    path = save_churn_schedule(trace, tmp_path / "sched.jsonl")

    result = run_campaign(
        trace.initial_graph(),
        HEALERS.make(HEALER),
        make_adversary(f"trace-churn:path={path}"),
        id_seed=trace.id_seed,
        keep_events=True,
    )
    assert result.events == original.events
    fingerprints = [
        [e.action, e.plan_kind, len(e.new_edges), e.id_changes]
        for e in result.events
    ]
    assert fingerprints == trace.fingerprints
