"""Unit tests for the mixed-round (churn) engine machinery.

Covers the op protocol guardrails, insertion error handling, the
δ-neutrality of announced join edges, tracker accounting, and the
fast-path exclusion — the engine-level contract the churn subsystem
builds on.
"""

from __future__ import annotations

import pytest

from repro.churn.trace import ScriptedChurn
from repro.errors import (
    ConfigurationError,
    NodeNotFoundError,
    SimulationError,
)
from repro.core.network import SelfHealingNetwork
from repro.core.registry import HEALERS
from repro.graph.generators import GENERATORS
from repro.graph.graph import Graph
from repro.sim.engine import run_campaign


def _path(n=6):
    return GENERATORS.make("path", force={"n": n})


def _network(healer="dash", n=6, **kwargs):
    return SelfHealingNetwork(_path(n), HEALERS.make(healer), **kwargs)


# ----------------------------------------------------------------------
# Op protocol
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "bad_op",
    [
        "delete",                       # not a tuple
        ("delete",),                    # missing victim
        ("delete", 1, 2),               # delete is binary
        ("add", 99),                    # add without targets
        ("add", 99, [1], "extra"),      # add is ternary
        ("rename", 1, [2]),             # unknown kind
        42,                             # not even a sequence
    ],
)
def test_malformed_churn_op_raises(bad_op):
    # A raw adversary, bypassing ScriptedChurn's eager decode, so the
    # engine's own _normalize_churn_ops guard is what fires.
    class Raw(ScriptedChurn):
        def __init__(self, op):
            self._op, self._pos = op, 0

        def choose_round(self, network):
            if self._pos:
                return None
            self._pos = 1
            return [self._op]

    with pytest.raises(SimulationError, match="malformed churn op"):
        run_campaign(
            _path(), HEALERS.make("dash"), Raw(bad_op), id_seed=0,
        )


def test_scripted_churn_rejects_malformed_ops_eagerly():
    with pytest.raises(SimulationError, match="malformed churn op"):
        ScriptedChurn([[("rename", 1, [2])]])


def test_mixed_and_batch_rounds_are_mutually_exclusive():
    class Both(ScriptedChurn):
        batch_rounds = True

    with pytest.raises(ConfigurationError, match="mixed and batch"):
        run_campaign(_path(), HEALERS.make("dash"), Both([]), id_seed=0)


def test_deleting_a_dead_node_in_a_churn_round_raises():
    with pytest.raises(SimulationError, match="dead node"):
        run_campaign(
            _path(),
            HEALERS.make("dash"),
            ScriptedChurn([[("delete", 0)], [("delete", 0)]]),
            id_seed=0,
        )


# ----------------------------------------------------------------------
# insert_and_heal error handling
# ----------------------------------------------------------------------

def test_inserting_a_present_node_raises():
    network = _network()
    with pytest.raises(SimulationError, match="already"):
        network.insert_and_heal(3, (0,))


def test_reusing_a_deleted_label_raises():
    network = _network()
    network.delete_and_heal(3)
    with pytest.raises(SimulationError):
        network.insert_and_heal(3, (0,))


def test_inserting_with_a_dead_target_raises():
    network = _network()
    network.delete_and_heal(3)
    with pytest.raises(NodeNotFoundError):
        network.insert_and_heal(99, (3,))


# ----------------------------------------------------------------------
# Insertion semantics
# ----------------------------------------------------------------------

def test_isolated_join_registers_as_singleton_component():
    network = _network(check_invariants=True)
    event = network.insert_and_heal(99, ())
    assert event.action == "insert"
    assert event.new_edges == ()
    assert event.components_merged == 1  # just its own fresh label
    assert network.graph.has_node(99)
    assert network.graph.degree(99) == 0
    # The invariant checkers (run on the next op) must accept the
    # singleton — a deletion elsewhere exercises them.
    network.delete_and_heal(2)


def test_inserted_node_can_be_deleted_and_healed():
    network = _network(check_invariants=True)
    network.insert_and_heal(99, (0, 5))
    event = network.delete_and_heal(99)
    assert event.action == "delete"
    assert not network.graph.has_node(99)
    assert network.inserted_nodes == [99]  # roster keeps the history


def test_announced_join_edges_are_delta_neutral():
    """Edges created by a join absorb into both endpoints' baselines:
    δ stays 0 for everyone, and only *healing* (here: the deletion
    afterwards) moves it."""
    network = _network(n=8)
    deltas_before = dict(network.deltas())
    network.insert_and_heal(99, tuple(range(8)))  # default healer: all
    assert network.graph.degree(99) == 8
    assert network.delta(99) == 0
    for u, d in network.deltas().items():
        assert d == deltas_before.get(u, 0) == 0, u
    assert network.peak_delta == 0


def test_tracker_counts_insert_rounds():
    network = _network()
    assert network.tracker.insert_rounds == 0
    network.insert_and_heal(99, (0,))
    network.insert_and_heal(100, (99,))
    assert network.tracker.insert_rounds == 2


def test_insertions_surface_in_result_values():
    result = run_campaign(
        _path(),
        HEALERS.make("dash"),
        ScriptedChurn([[("add", 99, (0,)), ("delete", 3)]]),
        id_seed=0,
        keep_events=True,
    )
    assert result.insertions == 1
    assert result.deletions == 1
    assert result.values["insertions"] == 1.0
    assert [e.action for e in result.events] == ["insert", "delete"]


def test_duplicate_targets_are_deduped():
    network = _network()
    event = network.insert_and_heal(99, (0, 0, 1, 0))
    assert event.participants == (0, 1)


# ----------------------------------------------------------------------
# Fast path exclusion
# ----------------------------------------------------------------------

def test_fast_path_eligibility_for_mixed_round_adversaries():
    """Exactly the verbatim churn adversary classes may enter the fused
    kernel (their delete-only prefixes fuse; insertion rounds bail out to
    the honest loop) — a mixed-round flag on anything else, or a churn
    subclass, is a protocol mismatch and must be refused."""
    from repro.adversary.classic import RandomAttack
    from repro.churn.adversaries import ChurnAdversary
    from repro.sim import fastpath

    graph = GENERATORS.make("erdos_renyi:p=0.2,backend=array", force={"n": 32})
    network = SelfHealingNetwork(graph, HEALERS.make("dash"))

    adversary = RandomAttack(seed=1)
    adversary.reset(network)
    kwargs = dict(
        metrics=[], batch_rounds=False, keep_events=False,
        keep_network=False,
    )
    assert fastpath.supports(network, adversary, **kwargs)

    # Same verbatim type, but flagged as mixed-round: instantly refused
    # (it would yield victim lists, not op lists, to the churn kernel).
    adversary.mixed_rounds = True
    assert not fastpath.supports(network, adversary, **kwargs)

    # The genuine churn classes qualify...
    churn = ChurnAdversary(rate=1.0, rounds=4, seed=1)
    churn.reset(network)
    assert fastpath.supports(network, churn, **kwargs)

    # ...but not with the flag stripped, and not as a subclass (either
    # may override hooks the kernel inlines).
    churn.mixed_rounds = False
    assert not fastpath.supports(network, churn, **kwargs)

    class TweakedChurn(ChurnAdversary):
        pass

    sub = TweakedChurn(rate=1.0, rounds=4, seed=1)
    sub.reset(network)
    assert not fastpath.supports(network, sub, **kwargs)


def test_scripted_churn_on_two_disjoint_edges_keeps_graph_consistent():
    """End-to-end mini-scenario touching every op kind, with paranoid
    invariant checking on."""
    g = Graph(range(4))
    g.add_edge(0, 1)
    g.add_edge(2, 3)
    result = run_campaign(
        g,
        HEALERS.make("forgiving-graph"),
        ScriptedChurn(
            [
                [("add", 10, (1, 2))],        # bridge the two edges
                [("delete", 10)],             # and tear the bridge down
                [("add", 11, ()), ("add", 12, (11,))],
            ]
        ),
        id_seed=5,
        keep_events=True,
        check_invariants=True,
    )
    assert result.insertions == 3
    assert result.deletions == 1
    assert [e.action for e in result.events] == [
        "insert", "delete", "insert", "insert"
    ]
