"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings

from repro.adversary.base import Adversary
from repro.core.network import SelfHealingNetwork
from repro.graph.graph import Graph
from repro.graph.traversal import is_connected

# Property-based tests drive whole simulations; keep example counts sane
# and disable the too-slow health check (a single example legitimately
# runs hundreds of heals).
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


def full_kill(
    network: SelfHealingNetwork,
    adversary: Adversary,
    *,
    assert_connected: bool = True,
    stop_alive: int = 0,
) -> int:
    """Drive ``adversary`` until ≤ ``stop_alive`` nodes remain.

    Asserts connectivity after every heal when requested; returns the
    number of deletions performed.
    """
    adversary.reset(network)
    deletions = 0
    while network.num_alive > max(1, stop_alive):
        victim = adversary.choose_target(network)
        if victim is None:
            break
        network.delete_and_heal(victim)
        deletions += 1
        if assert_connected:
            assert is_connected(network.graph), (
                f"disconnected after deleting {victim!r} "
                f"({network.num_alive} alive)"
            )
    return deletions


def random_kill_order(graph: Graph, seed: int) -> list:
    """A seeded uniformly-random deletion order over all nodes."""
    nodes = sorted(graph.nodes())
    random.Random(seed).shuffle(nodes)
    return nodes


@pytest.fixture
def small_ba_graph():
    from repro.graph.generators import preferential_attachment

    return preferential_attachment(30, 2, seed=42)


@pytest.fixture
def tiny_path():
    from repro.graph.generators import path_graph

    return path_graph(5)
