"""Tests for the attack/heal simulation loop."""

from __future__ import annotations

import pytest

from repro.adversary import RandomAttack, ScriptedAttack
from repro.core.dash import Dash
from repro.errors import ConfigurationError, SimulationError
from repro.graph.generators import path_graph, preferential_attachment
from repro.sim.metrics import DegreeMetric, Metric
from repro.sim.simulator import run_simulation


class TestDeprecation:
    def test_run_simulation_warns_with_migration_pointer(self):
        g = preferential_attachment(10, 2, seed=0)
        with pytest.warns(DeprecationWarning, match="repro.api.run_campaign"):
            run_simulation(g, Dash(), RandomAttack(seed=1))

    def test_run_wave_simulation_warns_with_migration_pointer(self):
        from repro.adversary import RandomWaveAttack
        from repro.sim.simulator import run_wave_simulation

        g = preferential_attachment(10, 2, seed=0)
        with pytest.warns(DeprecationWarning, match="repro.api.run_campaign"):
            run_wave_simulation(g, Dash(), RandomWaveAttack(2, seed=1))


class TestTermination:
    def test_deletes_everything_by_default(self):
        g = preferential_attachment(20, 2, seed=0)
        res = run_simulation(g, Dash(), RandomAttack(seed=1))
        assert res.final_alive == 0
        assert res.deletions == 20

    def test_stop_alive(self):
        g = preferential_attachment(20, 2, seed=0)
        res = run_simulation(g, Dash(), RandomAttack(seed=1), stop_alive=5)
        assert res.final_alive == 5
        assert res.deletions == 15

    def test_max_deletions(self):
        g = preferential_attachment(20, 2, seed=0)
        res = run_simulation(g, Dash(), RandomAttack(seed=1), max_deletions=3)
        assert res.deletions == 3
        assert res.final_alive == 17

    def test_adversary_none_stops(self):
        g = path_graph(6)
        res = run_simulation(g, Dash(), ScriptedAttack([0, 1]))
        assert res.deletions == 2
        assert res.final_alive == 4

    def test_invalid_config(self):
        g = path_graph(4)
        with pytest.raises(ConfigurationError):
            run_simulation(g, Dash(), RandomAttack(0), stop_alive=-1)
        with pytest.raises(ConfigurationError):
            run_simulation(g, Dash(), RandomAttack(0), max_deletions=-2)


class TestMetricsPlumbing:
    def test_metric_values_merged(self):
        g = preferential_attachment(15, 2, seed=2)
        res = run_simulation(
            g, Dash(), RandomAttack(seed=2), metrics=[DegreeMetric()]
        )
        assert "max_degree_increase" in res.values
        assert res["max_degree_increase"] == float(res.peak_delta)

    def test_duplicate_metric_names_rejected(self):
        g = path_graph(5)
        with pytest.raises(ConfigurationError, match="duplicate"):
            run_simulation(
                g,
                Dash(),
                RandomAttack(seed=0),
                metrics=[DegreeMetric(), DegreeMetric()],
            )

    def test_on_event_called_per_round(self):
        calls = []

        class Spy(Metric):
            def on_event(self, network, event):
                calls.append(event.step)

            def finalize(self, network):
                return {"spy": float(len(calls))}

        g = path_graph(6)
        res = run_simulation(g, Dash(), RandomAttack(seed=0), metrics=[Spy()])
        assert res["spy"] == res.deletions
        assert calls == list(range(1, res.deletions + 1))


class TestRetention:
    def test_events_kept_on_request(self):
        g = path_graph(5)
        res = run_simulation(g, Dash(), RandomAttack(seed=0), keep_events=True)
        assert res.events is not None
        assert len(res.events) == res.deletions

    def test_events_dropped_by_default(self):
        g = path_graph(5)
        res = run_simulation(g, Dash(), RandomAttack(seed=0))
        assert res.events is None
        assert res.network is None

    def test_network_kept_on_request(self):
        g = path_graph(5)
        res = run_simulation(
            g, Dash(), RandomAttack(seed=0), stop_alive=2, keep_network=True
        )
        assert res.network is not None
        assert res.network.num_alive == 2


class TestDeadTargetDetection:
    class StupidAdversary(RandomAttack):
        def choose_target(self, network):
            return "ghost"

    def test_dead_target_raises(self):
        g = path_graph(4)
        with pytest.raises(SimulationError, match="dead node"):
            run_simulation(g, Dash(), self.StupidAdversary(seed=0))
