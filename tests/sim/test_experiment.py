"""Tests for experiment specs, seeding discipline, parallel execution,
and first-class wave sweeps through the unified engine."""

from __future__ import annotations

import pytest

from repro.adversary import ADVERSARIES
from repro.core.registry import make_healer
from repro.errors import ConfigurationError
from repro.graph.generators import GENERATORS
from repro.sim.experiment import (
    ExperimentSpec,
    expand_tasks,
    run_experiment,
    run_task,
)
from repro.sim.metrics import ConnectivityMetric, default_metrics
from repro.sim.parallel import run_tasks
from repro.api import run_campaign
from repro.utils.rng import derive_seed


def tiny_spec(**overrides) -> ExperimentSpec:
    base = dict(
        name="tiny",
        sizes=(12, 16),
        healers=("dash", "line-heal"),
        adversary="random",
        repetitions=2,
        master_seed=99,
        connectivity_period=1,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSpecValidation:
    def test_valid(self):
        tiny_spec()

    def test_bad_repetitions(self):
        with pytest.raises(ConfigurationError):
            tiny_spec(repetitions=0)

    def test_bad_generator(self):
        with pytest.raises(ConfigurationError):
            tiny_spec(generator="nope")

    def test_bad_size(self):
        with pytest.raises(ConfigurationError):
            tiny_spec(sizes=(1,))

    def test_with_overrides(self):
        spec = tiny_spec().with_overrides(repetitions=5)
        assert spec.repetitions == 5
        assert spec.name == "tiny"

    def test_unknown_healer_fails_at_construction(self):
        with pytest.raises(ConfigurationError, match="available"):
            tiny_spec(healers=("dash", "nope"))

    def test_unknown_adversary_fails_at_construction(self):
        with pytest.raises(ConfigurationError, match="available"):
            tiny_spec(adversary="nope")

    def test_bad_adversary_spec_argument(self):
        with pytest.raises(ConfigurationError, match="invalid adversary"):
            tiny_spec(adversary="random:bogus=1")

    def test_bad_adversary_params(self):
        with pytest.raises(ConfigurationError, match="invalid adversary"):
            tiny_spec(adversary_params={"bogus": 1})

    def test_bad_healer_params(self):
        with pytest.raises(ConfigurationError, match="invalid healer"):
            tiny_spec(healer_params={"dash": {"bogus": 1}})

    def test_bad_generator_spec(self):
        with pytest.raises(ConfigurationError, match="invalid generator"):
            tiny_spec(generator="erdos_renyi:bogus=1")

    def test_bad_extra_metric(self):
        with pytest.raises(ConfigurationError, match="available"):
            tiny_spec(extra_metrics=("nope",))

    def test_max_waves_rejected_for_single_victim_adversary(self):
        with pytest.raises(ConfigurationError, match="wave adversaries"):
            tiny_spec(adversary="random", max_waves=3)
        # fine on a wave adversary
        tiny_spec(adversary="random-wave:size=4", max_waves=3)

    def test_duplicate_extra_metric_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="duplicates"):
            tiny_spec(extra_metrics=("connectivity",))
        with pytest.raises(ConfigurationError, match="duplicates"):
            tiny_spec(extra_metrics=("degree",))
        with pytest.raises(ConfigurationError, match="duplicates"):
            tiny_spec(extra_metrics=("components", "components"))
        # connectivity is only reserved while the periodic check is on
        tiny_spec(
            connectivity_period=0, extra_metrics=("connectivity:period=5",)
        )

    def test_spec_pinning_sweep_size_fails_at_construction(self):
        # `n` is owned by the sweep (one value per cell); a generator
        # spec pinning it would silently mislabel every result row.
        with pytest.raises(ConfigurationError, match="supplied by the runtime"):
            tiny_spec(generator="erdos_renyi:n=50,p=0.2")
        with pytest.raises(ConfigurationError, match="supplied by the runtime"):
            tiny_spec(generator_params={"n": 50})

    def test_missing_required_argument_fails_at_construction(self):
        with pytest.raises(ConfigurationError, match="missing required"):
            tiny_spec(adversary="scripted")  # sequence is required
        with pytest.raises(ConfigurationError, match="missing required"):
            tiny_spec(generator="grid")  # rows/cols required, n ignored
        with pytest.raises(ConfigurationError, match="missing required"):
            tiny_spec(extra_metrics=("stretch",))  # needs `original`

    def test_negative_budgets(self):
        with pytest.raises(ConfigurationError):
            tiny_spec(max_deletions=-1)
        with pytest.raises(ConfigurationError):
            tiny_spec(max_waves=-1)
        with pytest.raises(ConfigurationError):
            tiny_spec(stop_alive=-1)

    def test_spec_string_components_validate(self):
        tiny_spec(
            generator="erdos_renyi:p=0.3",
            healers=("dash", "degree-bounded:max_increase=3"),
            adversary="random-wave:size=4,schedule=geometric",
        )


class TestExpansion:
    def test_task_count(self):
        tasks = expand_tasks(tiny_spec())
        assert len(tasks) == 2 * 2 * 2

    def test_sizes_sorted(self):
        tasks = expand_tasks(tiny_spec(sizes=(30, 12)))
        assert tasks[0][1] == 12


class TestSeedingDiscipline:
    def test_same_graph_across_healers(self):
        """Paired design: (size, rep) determines the graph; the healer
        does not perturb it."""
        spec = tiny_spec()
        p1, v1 = run_task(spec, 12, "dash", 0)
        p2, v2 = run_task(spec, 12, "line-heal", 0)
        assert v1["deletions"] == v2["deletions"]  # same instance size/kill

    def test_reps_differ(self):
        spec = tiny_spec(healers=("dash",))
        _, v0 = run_task(spec, 12, "dash", 0)
        _, v1 = run_task(spec, 12, "dash", 1)
        # extremely likely to differ in some metric; check the id totals
        assert (
            v0["total_id_changes"] != v1["total_id_changes"]
            or v0["max_messages"] != v1["max_messages"]
            or v0["max_degree_increase"] != v1["max_degree_increase"]
        )

    def test_deterministic_repeat(self):
        spec = tiny_spec()
        out1 = run_task(spec, 16, "dash", 1)
        out2 = run_task(spec, 16, "dash", 1)
        assert out1 == out2


class TestRunExperiment:
    def test_row_count_and_params(self):
        spec = tiny_spec()
        rs = run_experiment(spec)
        assert len(rs) == 8
        healers = {r.params["healer"] for r in rs.rows}
        assert healers == {"dash", "line-heal"}

    def test_connectivity_always_holds(self):
        rs = run_experiment(tiny_spec())
        for row in rs.rows:
            assert row.values["always_connected"] == 1.0

    def test_stretch_collected_when_requested(self):
        spec = tiny_spec(
            sizes=(12,), healers=("dash",), measure_stretch=True,
            stretch_period=2,
        )
        rs = run_experiment(spec)
        assert all("max_stretch" in r.values for r in rs.rows)


class TestParallel:
    def test_parallel_equals_serial(self):
        spec = tiny_spec()
        tasks = expand_tasks(spec)
        serial = run_tasks(tasks, jobs=1)
        parallel = run_tasks(tasks, jobs=2)
        assert serial == parallel

    def test_empty_tasks(self):
        assert run_tasks([], jobs=2) == []


def wave_spec(**overrides) -> ExperimentSpec:
    base = dict(
        name="wavy",
        sizes=(20, 28),
        healers=("dash", "sdash", "line-heal"),
        adversary="random-wave:size=5",
        repetitions=2,
        master_seed=41,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestWaveSweeps:
    """Wave campaigns are first-class citizens of run_experiment."""

    def test_rows_carry_wave_fields(self):
        rs = run_experiment(wave_spec())
        assert len(rs) == 2 * 3 * 2
        for row in rs.rows:
            assert row.params["adversary"] == "random-wave:size=5"
            assert row.params["wave_schedule"] == "constant:size=5"
            assert row.values["waves"] >= 1.0
            assert row.values["always_connected"] == 1.0

    def test_max_waves_bounds_rounds(self):
        rs = run_experiment(wave_spec(max_waves=2, sizes=(20,)))
        for row in rs.rows:
            assert row.values["waves"] == 2.0
            assert row.values["deletions"] == 10.0

    def test_sweep_matches_direct_wave_simulation(self):
        """Byte-identity: every cell of a process-parallel wave sweep
        equals a direct run_campaign call with the same derived
        seeds and a hand-built adversary."""
        spec = wave_spec(adversary="random-wave:size=4,schedule=geometric")
        rs = run_experiment(spec, jobs=2)
        assert len(rs) == 2 * 3 * 2
        for row in rs.rows:
            size = row.params["size"]
            rep = row.params["rep"]
            healer_name = row.params["healer"]
            graph_seed = derive_seed(
                spec.master_seed, spec.name, "graph", size, rep
            )
            id_seed = derive_seed(
                spec.master_seed, spec.name, "ids", size, rep
            )
            attack_seed = derive_seed(
                spec.master_seed, spec.name, "attack", size, rep
            )
            direct = run_campaign(
                GENERATORS.make(
                    spec.generator, seed=graph_seed, force={"n": size}
                ),
                make_healer(healer_name),
                ADVERSARIES.make(
                    "random-wave:size=4,schedule=geometric", seed=attack_seed
                ),
                id_seed=id_seed,
                metrics=default_metrics() + [ConnectivityMetric()],
            )
            expected = dict(direct.values)
            expected["deletions"] = float(direct.deletions)
            expected["final_alive"] = float(direct.final_alive)
            assert row.values == expected

    def test_parallel_equals_serial_for_waves(self):
        tasks = expand_tasks(wave_spec())
        assert run_tasks(tasks, jobs=1) == run_tasks(tasks, jobs=2)


class TestExtraMetrics:
    def test_extra_metric_spec_collected(self):
        spec = tiny_spec(
            sizes=(12,), healers=("dash",), extra_metrics=("components",)
        )
        rs = run_experiment(spec)
        for row in rs.rows:
            assert row.values["max_components"] >= 1.0

    def test_extra_metric_with_arguments(self):
        spec = tiny_spec(
            sizes=(12,),
            healers=("dash",),
            extra_metrics=("capacity:headroom=2",),
        )
        rs = run_experiment(spec)
        for row in rs.rows:
            assert "first_collapse_step" in row.values
