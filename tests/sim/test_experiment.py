"""Tests for experiment specs, seeding discipline, parallel execution."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.experiment import ExperimentSpec, expand_tasks, run_experiment, run_task
from repro.sim.parallel import run_tasks


def tiny_spec(**overrides) -> ExperimentSpec:
    base = dict(
        name="tiny",
        sizes=(12, 16),
        healers=("dash", "line-heal"),
        adversary="random",
        repetitions=2,
        master_seed=99,
        connectivity_period=1,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSpecValidation:
    def test_valid(self):
        tiny_spec()

    def test_bad_repetitions(self):
        with pytest.raises(ConfigurationError):
            tiny_spec(repetitions=0)

    def test_bad_generator(self):
        with pytest.raises(ConfigurationError):
            tiny_spec(generator="nope")

    def test_bad_size(self):
        with pytest.raises(ConfigurationError):
            tiny_spec(sizes=(1,))

    def test_with_overrides(self):
        spec = tiny_spec().with_overrides(repetitions=5)
        assert spec.repetitions == 5
        assert spec.name == "tiny"


class TestExpansion:
    def test_task_count(self):
        tasks = expand_tasks(tiny_spec())
        assert len(tasks) == 2 * 2 * 2

    def test_sizes_sorted(self):
        tasks = expand_tasks(tiny_spec(sizes=(30, 12)))
        assert tasks[0][1] == 12


class TestSeedingDiscipline:
    def test_same_graph_across_healers(self):
        """Paired design: (size, rep) determines the graph; the healer
        does not perturb it."""
        spec = tiny_spec()
        p1, v1 = run_task(spec, 12, "dash", 0)
        p2, v2 = run_task(spec, 12, "line-heal", 0)
        assert v1["deletions"] == v2["deletions"]  # same instance size/kill

    def test_reps_differ(self):
        spec = tiny_spec(healers=("dash",))
        _, v0 = run_task(spec, 12, "dash", 0)
        _, v1 = run_task(spec, 12, "dash", 1)
        # extremely likely to differ in some metric; check the id totals
        assert (
            v0["total_id_changes"] != v1["total_id_changes"]
            or v0["max_messages"] != v1["max_messages"]
            or v0["max_degree_increase"] != v1["max_degree_increase"]
        )

    def test_deterministic_repeat(self):
        spec = tiny_spec()
        out1 = run_task(spec, 16, "dash", 1)
        out2 = run_task(spec, 16, "dash", 1)
        assert out1 == out2


class TestRunExperiment:
    def test_row_count_and_params(self):
        spec = tiny_spec()
        rs = run_experiment(spec)
        assert len(rs) == 8
        healers = {r.params["healer"] for r in rs.rows}
        assert healers == {"dash", "line-heal"}

    def test_connectivity_always_holds(self):
        rs = run_experiment(tiny_spec())
        for row in rs.rows:
            assert row.values["always_connected"] == 1.0

    def test_stretch_collected_when_requested(self):
        spec = tiny_spec(
            sizes=(12,), healers=("dash",), measure_stretch=True,
            stretch_period=2,
        )
        rs = run_experiment(spec)
        assert all("max_stretch" in r.values for r in rs.rows)


class TestParallel:
    def test_parallel_equals_serial(self):
        spec = tiny_spec()
        tasks = expand_tasks(spec)
        serial = run_tasks(tasks, jobs=1)
        parallel = run_tasks(tasks, jobs=2)
        assert serial == parallel

    def test_empty_tasks(self):
        assert run_tasks([], jobs=2) == []
