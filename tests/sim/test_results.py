"""Tests for result collection/aggregation."""

from __future__ import annotations

import pytest

from repro.sim.results import ResultRow, ResultSet


@pytest.fixture
def sample_results() -> ResultSet:
    rs = ResultSet()
    for size in (10, 20):
        for healer in ("dash", "graph-heal"):
            for rep in range(3):
                rs.add(
                    {"size": size, "healer": healer, "rep": rep},
                    {"delta": float(size / 10 + rep), "msgs": float(rep)},
                )
    return rs


class TestResultSet:
    def test_len(self, sample_results):
        assert len(sample_results) == 12

    def test_filter(self, sample_results):
        sub = sample_results.filter(healer="dash", size=10)
        assert len(sub) == 3
        assert all(r.params["healer"] == "dash" for r in sub.rows)

    def test_aggregate(self, sample_results):
        agg = sample_results.aggregate(("healer", "size"), "delta")
        s = agg[("dash", 10)]
        assert s.count == 3
        assert s.mean == pytest.approx((1 + 2 + 3) / 3)

    def test_series(self, sample_results):
        series = sample_results.series("size", "delta", group_by="healer")
        xs, ys = series["dash"]
        assert xs == [10, 20]
        assert ys[0] == pytest.approx(2.0)
        assert ys[1] == pytest.approx(3.0)

    def test_row_get_prefers_params(self):
        row = ResultRow({"a": 1}, {"a": 2.0, "b": 3.0})
        assert row.get("a") == 1
        assert row.get("b") == 3.0

    def test_to_table_contains_all(self, sample_results):
        table = sample_results.to_table(title="T")
        assert "healer" in table and "delta" in table and "T" in table

    def test_csv_round_trip(self, tmp_path, sample_results):
        p = sample_results.write_csv(tmp_path / "r.csv")
        text = p.read_text()
        assert "size,healer,rep,delta,msgs" in text.replace(" ", "")
        assert text.count("\n") == 13  # header + 12 rows

    def test_merged(self, sample_results):
        merged = ResultSet.merged([sample_results, sample_results])
        assert len(merged) == 24

    def test_missing_keys_render_blank(self):
        rs = ResultSet()
        rs.add({"a": 1}, {"x": 1.0})
        rs.add({"b": 2}, {"y": 2.0})
        table = rs.to_table()
        assert "a" in table and "b" in table
