"""Property-based campaign fuzzing over the live component registries.

Hypothesis previously only covered the ``graph/`` modules and
``analysis/weights``; this suite fuzzes whole campaigns. A strategy
draws *valid spec strings* from the live :data:`HEALERS`,
:data:`ADVERSARIES`, :data:`GENERATORS`, and :data:`WAVE_SCHEDULES`
registries — bare names that validate as-is plus parameterized variants
for factories with required arguments — builds the components exactly
the way :class:`~repro.sim.experiment.ExperimentSpec` would
(``Registry.make`` with centralized seed injection), runs a short
:func:`~repro.sim.engine.run_campaign` on a tiny graph, and asserts the
``check_component_labels`` and ``check_degree_index`` invariants after
every round.

Because the spec pool is derived from the registries at import time, a
newly registered healer/adversary/generator/schedule is fuzzed
automatically — and a component whose bare spec stops validating drops
out loudly via :func:`test_strategies_draw_valid_specs`.
"""

from __future__ import annotations

import pytest
from hypothesis import find, given, settings
from hypothesis import strategies as st

from repro.adversary import ADVERSARIES
from repro.adversary.waves import WAVE_SCHEDULES
from repro.analysis import check_component_labels, check_degree_index
from repro.core.network import SelfHealingNetwork
from repro.core.registry import HEALERS
from repro.errors import ConfigurationError, InvariantViolation
from repro.graph.generators import GENERATORS
from repro.sim.engine import run_campaign
from repro.utils.rng import derive_seed


def _bare_valid(registry) -> list[str]:
    """Registry names that are valid specs as-is (required args are all
    runtime-injected or defaulted)."""
    names = []
    for name in sorted(registry):
        try:
            registry.validate_spec(name)
            names.append(name)
        except ConfigurationError:
            pass
    return names


#: live-registry pools — new registrations join the fuzz automatically
BARE_HEALERS = _bare_valid(HEALERS)
BARE_ADVERSARIES = _bare_valid(ADVERSARIES)
BARE_GENERATORS = _bare_valid(GENERATORS)


def healer_specs() -> st.SearchStrategy[str]:
    parameterized = st.integers(1, 3).map(
        lambda m: f"degree-bounded:max_increase={m}"
    )
    return st.one_of(st.sampled_from(BARE_HEALERS), parameterized)


def schedule_specs() -> st.SearchStrategy[str]:
    """Nested wave-schedule fragments (no commas — nested specs cannot
    contain them), one variant per registered schedule kind."""
    assert set(WAVE_SCHEDULES) >= {"constant", "geometric", "fraction"}
    return st.one_of(
        st.integers(1, 4).map(lambda k: f"constant:size={k}"),
        st.integers(1, 3).map(lambda k: f"geometric:initial={k}"),
        st.sampled_from(["fraction:fraction=0.3", "fraction:fraction=0.6"]),
    )


def churn_adversary_specs() -> st.SearchStrategy[str]:
    """Parameterized churn (mixed add/delete rounds): both lifetime
    distributions, sub- and super-unit join rates."""
    return st.builds(
        lambda rate, lifetime, mean, rounds: (
            f"churn:rate={rate},lifetime={lifetime},"
            f"mean={mean},rounds={rounds}"
        ),
        st.sampled_from([0.5, 1.0, 2.5]),
        st.sampled_from(["exp", "pareto"]),
        st.sampled_from([3.0, 6.0]),
        st.integers(4, 16),
    )


def adversary_specs() -> st.SearchStrategy[str]:
    wave_names = [n for n in BARE_ADVERSARIES if n.endswith("-wave")]
    waves = st.builds(
        lambda name, size, sched: f"{name}:size={size},schedule={sched}",
        st.sampled_from(wave_names),
        st.integers(1, 5),
        schedule_specs(),
    )
    level = st.integers(2, 3).map(lambda b: f"level-attack:branching={b}")
    return st.one_of(
        st.sampled_from(BARE_ADVERSARIES),
        waves,
        level,
        churn_adversary_specs(),
    )


def generator_specs() -> st.SearchStrategy[str]:
    parameterized = st.sampled_from(
        [
            "erdos_renyi:p=0.2",
            "watts_strogatz:k=4,p=0.2",
            "gnm_random:m=20",
            "grid:rows=3,cols=4",
            "complete_kary_tree:branching=2,depth=3",
        ]
    )
    return st.one_of(st.sampled_from(BARE_GENERATORS), parameterized)


campaign_specs = st.fixed_dictionaries(
    {
        "generator": generator_specs(),
        "healer": healer_specs(),
        "adversary": adversary_specs(),
        "n": st.integers(8, 18),
        "seed": st.integers(0, 2**20),
    }
)


class _CheckInvariantsMetric:
    """Asserts label and index ground truth after every heal event."""

    def on_event(self, network, event) -> None:
        check_component_labels(network)
        check_degree_index(network)

    def finalize(self, network) -> dict[str, float]:
        return {}


def run_fuzzed_campaign(spec: dict, *, max_rounds: int = 8):
    """Build every component from its spec string (seed injection as in
    ``ExperimentSpec``) and run a short invariant-checked campaign."""
    seed = spec["seed"]
    graph = GENERATORS.make(
        spec["generator"],
        seed=derive_seed(seed, "generator"),
        force={"n": spec["n"]},
    )
    healer = HEALERS.make(spec["healer"], seed=derive_seed(seed, "healer"))
    adversary = ADVERSARIES.make(
        spec["adversary"], seed=derive_seed(seed, "adversary")
    )
    return run_campaign(
        graph,
        healer,
        adversary,
        id_seed=derive_seed(seed, "ids"),
        metrics=[_CheckInvariantsMetric()],
        max_rounds=max_rounds,
        keep_network=True,
    )


@given(campaign_specs)
@settings(max_examples=40, deadline=None)
def test_fuzzed_campaigns_hold_invariants(spec):
    """Any healer × adversary × generator × schedule drawn from the live
    registries keeps component labels and degree/δ indexes exact every
    round, and leaves the tracker consistent at campaign end."""
    result = run_fuzzed_campaign(spec)
    assert result.deletions >= 0
    assert result.final_alive >= 0
    check_component_labels(result.network)
    check_degree_index(result.network)


@given(
    healer_specs(), adversary_specs(), generator_specs(), schedule_specs()
)
@settings(max_examples=40, deadline=None)
def test_strategies_draw_valid_specs(healer, adversary, generator, schedule):
    """Every drawn spec validates against its live registry — the
    fail-fast contract ``ExperimentSpec`` relies on."""
    HEALERS.validate_spec(healer)
    ADVERSARIES.validate_spec(adversary)
    GENERATORS.validate_spec(generator)
    WAVE_SCHEDULES.validate_spec(schedule)


def test_registry_pools_are_live_and_nonempty():
    """The pools come from the registries, not a hand-written list."""
    assert "dash" in BARE_HEALERS and "graph-heal" in BARE_HEALERS
    assert "forgiving-tree" in BARE_HEALERS
    assert "forgiving-graph" in BARE_HEALERS
    assert "random" in BARE_ADVERSARIES
    assert any(n.endswith("-wave") for n in BARE_ADVERSARIES)
    assert "scripted" not in BARE_ADVERSARIES  # needs a victim sequence
    assert "churn" in BARE_ADVERSARIES  # mixed rounds join the fuzz
    assert "trace-churn" not in BARE_ADVERSARIES  # needs a schedule file
    assert "random_tree" in BARE_GENERATORS


churn_campaign_specs = st.fixed_dictionaries(
    {
        "generator": generator_specs(),
        "healer": healer_specs(),
        "adversary": churn_adversary_specs(),
        "n": st.integers(8, 18),
        "seed": st.integers(0, 2**20),
    }
)


@given(churn_campaign_specs)
@settings(max_examples=30, deadline=None)
def test_fuzzed_churn_campaigns_hold_invariants(spec):
    """Mixed add/delete rounds under every healer in the pool keep
    component labels and the degree/δ indexes exact after *every* op —
    insertion events run the same ground-truth checks deletions do."""
    result = run_fuzzed_campaign(spec)
    assert result.insertions >= 0
    assert result.values.get("insertions") == float(result.insertions)
    assert result.final_alive >= 0
    check_component_labels(result.network)
    check_degree_index(result.network)


def test_fuzzer_shrinks_to_minimal_failing_spec():
    """Seeded violation: corrupt one tracker label mid-campaign and let
    Hypothesis hunt for a failing healer spec. Every spec fails, so the
    shrunk witness must be the *minimal* one — the first element of the
    healer pool (``sampled_from`` shrinks toward index 0)."""

    def violates(healer_spec: str) -> bool:
        graph = GENERATORS.make("random_tree", seed=3, force={"n": 10})
        healer = HEALERS.make(healer_spec, seed=1)
        net = SelfHealingNetwork(graph, healer, seed=0)
        net.delete_and_heal(sorted(net.graph.nodes())[0])
        tracker = net.tracker
        root = next(iter(tracker._root_members))
        tracker._root_label[root] = (2.0, 999)  # sabotage: bogus MINID
        try:
            check_component_labels(net)
        except InvariantViolation:
            return True
        return False

    minimal = find(st.sampled_from(BARE_HEALERS), violates)
    assert minimal == BARE_HEALERS[0]


crash_specs = st.fixed_dictionaries(
    {
        "generator": generator_specs(),
        "healer": healer_specs(),
        "adversary": adversary_specs(),
        "n": st.integers(10, 18),
        "seed": st.integers(0, 2**20),
        "crash_round": st.integers(1, 5),
        "checkpoint_every": st.integers(1, 4),
    }
)


def _build_campaign_components(spec: dict):
    seed = spec["seed"]
    graph = GENERATORS.make(
        spec["generator"],
        seed=derive_seed(seed, "generator"),
        force={"n": spec["n"]},
    )
    healer = HEALERS.make(spec["healer"], seed=derive_seed(seed, "healer"))
    adversary = ADVERSARIES.make(
        spec["adversary"], seed=derive_seed(seed, "adversary")
    )
    from repro.sim.metrics import METRICS

    return graph, healer, adversary, [METRICS.make("messages")]


@given(spec=crash_specs)
@settings(max_examples=25, deadline=None)
def test_fuzzed_crash_resume_is_byte_identical(tmp_path_factory, spec):
    """Inject a seeded crash at a fuzzed round into any checkpointable
    campaign drawn from the live registries; resuming from the last
    checkpoint must reproduce the uninterrupted run exactly — final
    metric values AND the full HealEvent stream."""
    from hypothesis import assume

    from repro.errors import SimulatedCrash
    from repro.recovery import CrashAtRound, resume_from_ledger

    graph, healer, adversary, metrics = _build_campaign_components(spec)
    assume(getattr(adversary, "checkpointable", False))

    straight = run_campaign(
        graph, healer, adversary,
        id_seed=derive_seed(spec["seed"], "ids"),
        metrics=metrics, keep_events=True,
    )

    graph2, healer2, adversary2, metrics2 = _build_campaign_components(spec)
    state = tmp_path_factory.mktemp("crash")
    ledger = state / "campaign.jsonl"
    try:
        resumed = run_campaign(
            graph2, healer2, adversary2,
            id_seed=derive_seed(spec["seed"], "ids"),
            metrics=metrics2 + [CrashAtRound(spec["crash_round"])],
            keep_events=True,
            checkpoint_every=spec["checkpoint_every"],
            checkpoint_dir=state / "checkpoints",
            ledger=ledger,
        )
        # Campaign ended before the crash round fired — the crash-run
        # result itself must already match.
    except SimulatedCrash:
        resumed = resume_from_ledger(ledger)

    assert resumed.values == straight.values
    assert (
        resumed.initial_n,
        resumed.deletions,
        resumed.final_alive,
        resumed.peak_delta,
    ) == (
        straight.initial_n,
        straight.deletions,
        straight.final_alive,
        straight.peak_delta,
    )
    assert resumed.events == straight.events


def test_seeded_violation_is_caught_every_round():
    """The per-round metric (not just campaign-end checks) is what trips
    on a mid-campaign corruption."""

    class _SabotageAtRound3(_CheckInvariantsMetric):
        def __init__(self):
            self._rounds = 0

        def on_event(self, network, event) -> None:
            self._rounds += 1
            if self._rounds == 3:
                tracker = network.tracker
                root = next(iter(tracker._root_members))
                tracker._root_label[root] = (3.0, 998)
            super().on_event(network, event)

    graph = GENERATORS.make("preferential_attachment", seed=5, force={"n": 16})
    with pytest.raises(InvariantViolation):
        run_campaign(
            graph,
            HEALERS.make("dash"),
            ADVERSARIES.make("random", seed=5),
            id_seed=5,
            metrics=[_SabotageAtRound3()],
        )
