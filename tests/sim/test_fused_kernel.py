"""Differential tests for the fused scalar-only campaign kernel.

The kernel (``repro.sim.fastpath``) may only change *speed*: every
result scalar, the adversary's RNG stream, and its survivor list must
be exactly what the generic engine produces. The generic array path is
obtained by forcing an observer (``keep_events=True``), which makes the
kernel ineligible.
"""

from __future__ import annotations

import json

import pytest

from repro.adversary import ADVERSARIES
from repro.core.registry import HEALERS
from repro.errors import SimulationError
from repro.graph.generators import preferential_attachment, random_tree
from repro.sim import fastpath
from repro.sim.engine import run_campaign


def make(backend, n=160, seed=1):
    return preferential_attachment(n, 3, seed=seed, backend=backend)


def scalars(result):
    return (
        result.initial_n,
        result.deletions,
        result.final_alive,
        result.peak_delta,
        result.values,
        result.events,
        result.network,
    )


def run(graph, adversary, **kw):
    return run_campaign(
        graph, HEALERS.make("dash"), adversary, id_seed=7, **kw
    )


CASES = [
    {},
    {"stop_alive": 40},
    {"max_rounds": 23},
    {"max_deletions": 57},
    {"max_rounds": 0},
]


@pytest.mark.parametrize("kw", CASES, ids=[str(c) for c in CASES])
def test_fused_matches_generic_and_object(kw):
    before = fastpath._fused_campaigns
    adv_fused = ADVERSARIES.make("random", seed=2)
    fused = run(make("array"), adv_fused, **kw)
    assert fastpath._fused_campaigns == before + 1

    adv_gen = ADVERSARIES.make("random", seed=2)
    generic = run(make("array"), adv_gen, keep_events=True, **kw)
    obj = run(make("object"), ADVERSARIES.make("random", seed=2), **kw)

    expect = scalars(generic)[:5] + (None, None)
    assert scalars(fused) == expect
    assert scalars(obj) == scalars(fused)

    # The adversary must leave the kernel exactly where the generic
    # engine would have left it: same survivor list semantics, same
    # future RNG stream.
    assert adv_fused._rng.getstate() == adv_gen._rng.getstate()
    # The generic adversary pops its final (now dead) victim lazily on
    # the next draw; the kernel pops eagerly. Normalize and compare.
    expected_alive = [u for u in adv_gen._alive if u != adv_gen._last]
    assert adv_fused._alive == expected_alive
    assert adv_fused._last is None


def test_fused_survivor_list_exact():
    adv_fused = ADVERSARIES.make("random", seed=5)
    fused = run(make("array", seed=3), adv_fused, stop_alive=50)
    adv_gen = ADVERSARIES.make("random", seed=5)
    generic = run(
        make("array", seed=3), adv_gen, stop_alive=50, keep_events=True,
        keep_network=True,
    )
    survivors = sorted(generic.network.graph.nodes())
    assert adv_fused._alive == survivors
    assert fused.final_alive == len(survivors) == 50


@pytest.mark.parametrize(
    "graph_seed,attack_seed,id_seed", [(1, 2, 3), (4, 5, 6), (7, 8, 9)]
)
def test_fused_seed_grid(graph_seed, attack_seed, id_seed):
    results = []
    for backend, extra in (("array", {}), ("object", {})):
        r = run_campaign(
            make(backend, n=220, seed=graph_seed),
            HEALERS.make("dash"),
            ADVERSARIES.make("random", seed=attack_seed),
            id_seed=id_seed,
            **extra,
        )
        results.append((r.deletions, r.final_alive, r.peak_delta))
    assert results[0] == results[1]


def test_fused_engages_only_when_unobserved():
    before = fastpath._fused_campaigns
    ineligible = [
        dict(keep_events=True),
        dict(keep_network=True),
        dict(check_invariants=True),
        dict(batch_fast_path=False),
    ]
    for kw in ineligible:
        run(make("array", n=40), ADVERSARIES.make("random", seed=1), **kw)
    # object backend, non-Dash healer, non-random adversary
    run(make("object", n=40), ADVERSARIES.make("random", seed=1))
    run_campaign(
        make("array", n=40), HEALERS.make("sdash"),
        ADVERSARIES.make("random", seed=1), id_seed=7,
    )
    run_campaign(
        make("array", n=40), HEALERS.make("dash"),
        ADVERSARIES.make("neighbor-of-max", seed=1), id_seed=7,
    )
    assert fastpath._fused_campaigns == before
    run(make("array", n=40), ADVERSARIES.make("random", seed=1))
    assert fastpath._fused_campaigns == before + 1


def test_fused_on_tree_topology():
    results = []
    for backend in ("array", "object"):
        r = run_campaign(
            random_tree(150, seed=2, backend=backend),
            HEALERS.make("dash"),
            ADVERSARIES.make("random", seed=4),
            id_seed=1,
        )
        results.append((r.deletions, r.final_alive, r.peak_delta))
    assert results[0] == results[1]


@pytest.mark.parametrize("kw", [{}, {"stop_alive": 33}])
def test_fenwick_survivor_view_identical(monkeypatch, kw):
    """Above the threshold, victim draws go through the Fenwick
    rank-select view instead of the adversary's list. Forcing the tree
    at small n must change nothing: same scalars, same RNG stream, same
    rebuilt survivor list."""
    adv_list = ADVERSARIES.make("random", seed=9)
    with_list = run(make("array", n=180, seed=4), adv_list, **kw)

    monkeypatch.setattr(fastpath, "_FENWICK_THRESHOLD", 1)
    adv_tree = ADVERSARIES.make("random", seed=9)
    with_tree = run(make("array", n=180, seed=4), adv_tree, **kw)

    assert scalars(with_tree) == scalars(with_list)
    assert adv_tree._rng.getstate() == adv_list._rng.getstate()
    assert adv_tree._alive == adv_list._alive
    assert adv_tree._last is None


def test_fenwick_view_unit():
    view = fastpath._FenwickAliveView(6)
    assert len(view) == 6
    assert [view[i] for i in range(6)] == [0, 1, 2, 3, 4, 5]
    view.remove(0)
    view.remove(3)
    assert len(view) == 4
    assert [view[i] for i in range(4)] == [1, 2, 4, 5]
    view.remove(5)
    assert [view[i] for i in range(3)] == [1, 2, 4]


# ----------------------------------------------------------------------
# Fused churn kernel (delete-only prefixes fuse; insertions bail out)
# ----------------------------------------------------------------------

def _schedule(tmp_path, rounds):
    path = tmp_path / "schedule.jsonl"
    path.write_text("\n".join(json.dumps(r) for r in rounds) + "\n")
    return path


def _churn_scalars(result):
    return (
        result.initial_n,
        result.deletions,
        result.insertions,
        result.final_alive,
        result.peak_delta,
        result.values,
    )


def _run_three_ways(make_adversary, **kw):
    """(fused, generic-array, object) results for one churn campaign."""
    fused = run(make("array"), make_adversary(), **kw)
    generic = run(make("array"), make_adversary(), keep_events=True, **kw)
    obj = run(make("object"), make_adversary(), keep_events=True, **kw)
    assert _churn_scalars(generic) == _churn_scalars(obj)
    assert _churn_scalars(fused) == _churn_scalars(generic)
    return fused, generic, obj


def test_fused_churn_pure_death_completes_in_kernel():
    """A churn schedule that never inserts (rate=0) runs start to finish
    inside the kernel — one fused campaign, scalars identical to the
    generic array path and the object backend."""
    before = fastpath._fused_campaigns
    _run_three_ways(lambda: ADVERSARIES.make("churn:rate=0.0", seed=6))
    assert fastpath._fused_campaigns == before + 1


def test_fused_churn_delete_prefix_then_bailout(tmp_path):
    """A trace with a long delete-only prefix fuses the prefix, bails on
    the first insertion round, and the generic engine finishes the
    campaign — byte-identical to never having fused at all."""
    rounds = [[["delete", u]] for u in range(40)]
    rounds.append([["delete", 77], ["delete", 78]])
    rounds.append([["add", 500, [100, 101]], ["delete", 100]])
    rounds.append([["add", 501, [500]]])
    rounds.append([["delete", 500]])
    path = _schedule(tmp_path, rounds)

    before = fastpath._fused_campaigns
    fused, generic, _ = _run_three_ways(
        lambda: ADVERSARIES.make(f"trace-churn:path={path}")
    )
    assert fastpath._fused_campaigns == before + 1  # armed, then bailed
    assert fused.deletions == 44
    assert fused.insertions == 2
    assert generic.insertions == 2


def test_fused_churn_first_round_insertion_bails_unarmed(tmp_path):
    """Steady-state churn inserts from round one: the kernel must hand
    off before building any of its O(n) arrays — no fused campaign is
    counted, and nothing needs repair."""
    path = _schedule(
        tmp_path,
        [[["add", 500, [0]], ["delete", 1]], [["delete", 500]]],
    )
    before = fastpath._fused_campaigns
    _run_three_ways(lambda: ADVERSARIES.make(f"trace-churn:path={path}"))
    assert fastpath._fused_campaigns == before


def test_fused_churn_bailout_repairs_graph_state(tmp_path):
    """After an armed bailout the graph the generic engine inherits must
    have accurate public counters, a consistent degree index, and a
    valid adjacency — the kernel bypassed all of them live."""
    rounds = [[["delete", u]] for u in range(30)]
    rounds.append([["add", 900, [50, 51]]])
    path = _schedule(tmp_path, rounds)
    g = make("array")
    run(g, ADVERSARIES.make(f"trace-churn:path={path}"))
    assert g.has_node(900)
    assert g.num_nodes == 160 - 30 + 1
    assert g.num_edges == sum(g.degrees().values()) // 2
    g.check_degree_index()
    from repro.graph.validation import validate_graph

    validate_graph(g)


def test_fused_churn_dead_victim_error_parity(tmp_path):
    """A trace that re-kills a dead node raises the same SimulationError
    from the kernel's inlined check as from the generic loop."""
    path = _schedule(tmp_path, [[["delete", 3]], [["delete", 3]]])
    messages = {}
    for backend in ("array", "object"):
        with pytest.raises(SimulationError, match="dead node") as exc:
            run(make(backend), ADVERSARIES.make(f"trace-churn:path={path}"))
        messages[backend] = str(exc.value)
    assert messages["array"] == messages["object"]


def test_fused_repairs_graph_counters():
    """After a fused stop_alive campaign the graph's public counters and
    degree machinery must be accurate (the kernel bypasses them live)."""
    g = make("array", n=120, seed=6)
    adv = ADVERSARIES.make("random", seed=8)
    run(g, adv, stop_alive=30)
    assert g.num_nodes == 30
    assert sorted(g.nodes()) == adv._alive
    assert g.num_edges == sum(g.degrees().values()) // 2
    g.check_degree_index()
    from repro.graph.validation import validate_graph

    validate_graph(g)
