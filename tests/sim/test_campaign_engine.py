"""Differential tests for the unified campaign engine.

The byte-identity contract: :func:`repro.sim.simulator.run_simulation`
and :func:`repro.sim.simulator.run_wave_simulation` are now thin shims
over :func:`repro.sim.engine.run_campaign`, and every field of their
:class:`SimulationResult`\\ s — including the full :class:`HealEvent`
stream — must match the pre-engine loops preserved verbatim in
``tests/sim/_seed_simulator.py``, across topologies × healers ×
adversary shapes. Plus direct engine-behavior tests: round routing,
duplicate-wave accounting, the round/node budgets.
"""

from __future__ import annotations

import pytest

from repro.adversary import make_adversary
from repro.adversary.waves import RandomWaveAttack, WaveAdversary
from repro.core.registry import make_healer
from repro.errors import SimulationError
from repro.graph.generators import (
    erdos_renyi,
    grid_graph,
    preferential_attachment,
    random_tree,
)
from repro.sim.engine import run_campaign
from repro.sim.metrics import ConnectivityMetric, default_metrics
from repro.sim.simulator import run_simulation, run_wave_simulation

from tests.sim._seed_simulator import (
    seed_run_simulation,
    seed_run_wave_simulation,
)

TOPOLOGIES = {
    "pa": lambda: preferential_attachment(48, 2, seed=11),
    "er": lambda: erdos_renyi(40, 0.15, seed=12),
    "tree": lambda: random_tree(40, seed=13),
    "grid": lambda: grid_graph(6, 6),
}

HEALERS_UNDER_TEST = ("dash", "sdash", "line-heal")


def assert_results_identical(a, b):
    assert a.initial_n == b.initial_n
    assert a.deletions == b.deletions
    assert a.final_alive == b.final_alive
    assert a.peak_delta == b.peak_delta
    assert a.values == b.values
    assert a.events == b.events  # full HealEvent streams, field by field


@pytest.mark.parametrize("topo", sorted(TOPOLOGIES))
@pytest.mark.parametrize("healer_name", HEALERS_UNDER_TEST)
class TestShimsMatchSeedLoops:
    def test_single_victim_full_kill(self, topo, healer_name):
        def kwargs():
            # fresh metric instances per run — metrics are stateful
            return dict(
                id_seed=5,
                metrics=default_metrics() + [ConnectivityMetric()],
                keep_events=True,
            )

        new = run_simulation(
            TOPOLOGIES[topo](),
            make_healer(healer_name),
            make_adversary("neighbor-of-max", seed=7),
            **kwargs(),
        )
        old = seed_run_simulation(
            TOPOLOGIES[topo](),
            make_healer(healer_name),
            make_adversary("neighbor-of-max", seed=7),
            **kwargs(),
        )
        assert_results_identical(new, old)
        assert new.final_alive == 0

    def test_wave_full_kill(self, topo, healer_name):
        def kwargs():
            return dict(
                id_seed=5,
                metrics=default_metrics() + [ConnectivityMetric()],
                keep_events=True,
            )

        new = run_wave_simulation(
            TOPOLOGIES[topo](),
            make_healer(healer_name),
            RandomWaveAttack(("constant", 5), seed=7),
            **kwargs(),
        )
        old = seed_run_wave_simulation(
            TOPOLOGIES[topo](),
            make_healer(healer_name),
            RandomWaveAttack(("constant", 5), seed=7),
            **kwargs(),
        )
        assert_results_identical(new, old)
        assert new.final_alive == 0

    def test_wave_stop_conditions(self, topo, healer_name):
        for stop_kwargs in ({"stop_alive": 9}, {"max_waves": 3}):
            new = run_wave_simulation(
                TOPOLOGIES[topo](),
                make_healer(healer_name),
                RandomWaveAttack(("geometric", 2, 2.0), seed=3),
                id_seed=1,
                keep_events=True,
                **stop_kwargs,
            )
            old = seed_run_wave_simulation(
                TOPOLOGIES[topo](),
                make_healer(healer_name),
                RandomWaveAttack(("geometric", 2, 2.0), seed=3),
                id_seed=1,
                keep_events=True,
                **stop_kwargs,
            )
            assert_results_identical(new, old)


class TestShimsDelegateToEngine:
    def test_run_simulation_equals_run_campaign(self):
        shim = run_simulation(
            preferential_attachment(30, 2, seed=1),
            make_healer("dash"),
            make_adversary("random", seed=2),
            id_seed=3,
            keep_events=True,
        )
        direct = run_campaign(
            preferential_attachment(30, 2, seed=1),
            make_healer("dash"),
            make_adversary("random", seed=2),
            id_seed=3,
            keep_events=True,
        )
        assert_results_identical(shim, direct)

    def test_run_wave_simulation_equals_run_campaign(self):
        shim = run_wave_simulation(
            preferential_attachment(30, 2, seed=1),
            make_healer("dash"),
            RandomWaveAttack(("constant", 4), seed=2),
            id_seed=3,
            max_waves=4,
            keep_events=True,
        )
        direct = run_campaign(
            preferential_attachment(30, 2, seed=1),
            make_healer("dash"),
            RandomWaveAttack(("constant", 4), seed=2),
            id_seed=3,
            max_rounds=4,
            keep_events=True,
        )
        assert_results_identical(shim, direct)

    def test_traversal_path_still_forceable(self):
        fast = run_campaign(
            preferential_attachment(40, 2, seed=1),
            make_healer("dash"),
            RandomWaveAttack(("constant", 6), seed=2),
            id_seed=3,
            keep_events=True,
            keep_network=True,
        )
        slow = run_campaign(
            preferential_attachment(40, 2, seed=1),
            make_healer("dash"),
            RandomWaveAttack(("constant", 6), seed=2),
            id_seed=3,
            keep_events=True,
            keep_network=True,
            batch_fast_path=False,
        )
        assert fast.events == slow.events
        assert fast.network.tracker.fast_batch_rounds > 0
        assert slow.network.tracker.fast_batch_rounds == 0


class _DuplicateWave(WaveAdversary):
    """Names the same victim several times within one wave."""

    name = "dup-wave"

    def _pick(self, network, size):
        survivors = sorted(network.graph.nodes())
        wave = survivors[:size]
        return wave + wave  # every victim listed twice


class TestEngineRoundSemantics:
    def test_duplicate_wave_counted_once(self):
        res = run_campaign(
            preferential_attachment(20, 2, seed=1),
            make_healer("dash"),
            _DuplicateWave(("constant", 4)),
            id_seed=0,
            max_rounds=2,
        )
        # Two waves of 4 distinct victims each, despite duplicates.
        assert res.deletions == 8
        assert res.values["waves"] == 2.0

    def test_classic_adversary_yields_singleton_rounds(self):
        adv = make_adversary("neighbor-of-max", seed=1)
        res = run_campaign(
            preferential_attachment(15, 2, seed=1),
            make_healer("dash"),
            adv,
            id_seed=0,
        )
        assert res.deletions == 15
        assert "waves" not in res.values  # single-victim campaign

    def test_wave_values_include_rounds(self):
        res = run_campaign(
            preferential_attachment(20, 2, seed=1),
            make_healer("dash"),
            RandomWaveAttack(("constant", 5), seed=1),
            id_seed=0,
        )
        assert res.values["waves"] == 4.0

    def test_max_deletions_bounds_wave_campaigns_between_rounds(self):
        res = run_campaign(
            preferential_attachment(20, 2, seed=1),
            make_healer("dash"),
            RandomWaveAttack(("constant", 6), seed=1),
            id_seed=0,
            max_deletions=7,
        )
        # Budget is checked between rounds: the second wave starts
        # (7 > 6 deleted) and completes, then the loop stops.
        assert res.deletions == 12

    def test_batch_rounds_false_rejects_multi_victim_round(self):
        with pytest.raises(SimulationError, match="batch rounds are disabled"):
            run_campaign(
                preferential_attachment(20, 2, seed=1),
                make_healer("dash"),
                RandomWaveAttack(("constant", 3), seed=1),
                batch_rounds=False,
            )

    def test_dead_victim_detected_inside_wave(self):
        class Ghost(WaveAdversary):
            name = "ghost-wave"

            def _pick(self, network, size):
                return ["ghost"]

        with pytest.raises(SimulationError, match="dead node"):
            run_campaign(
                preferential_attachment(10, 2, seed=1),
                make_healer("dash"),
                Ghost(("constant", 1)),
            )
