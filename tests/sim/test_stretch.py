"""Tests for stretch computation."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.graph.generators import (
    cycle_graph,
    path_graph,
    preferential_attachment,
)
from repro.graph.graph import Graph
from repro.sim.stretch import StretchComputer


class TestExactStretch:
    def test_identity_is_one(self):
        g = path_graph(6)
        sc = StretchComputer(g)
        rep = sc.measure(g.copy())
        assert rep.max_stretch == 1.0
        assert rep.mean_stretch == 1.0
        assert rep.connected

    def test_cycle_chord_removal(self):
        """Cycle C6: removing one edge makes opposite ends 5 apart
        instead of 1 → stretch 5. (Simulate by passing a mutated copy.)"""
        g = cycle_graph(6)
        sc = StretchComputer(g)
        h = g.copy()
        h.remove_edge(0, 5)
        rep = sc.measure(h)
        assert rep.max_stretch == 5.0

    def test_subset_of_nodes(self):
        g = path_graph(5)
        sc = StretchComputer(g)
        h = g.copy()
        h.remove_node(4)
        rep = sc.measure(h)
        assert rep.max_stretch == 1.0
        assert rep.pairs == 4 * 3  # ordered pairs among 4 survivors

    def test_disconnection_reported(self):
        g = path_graph(4)
        sc = StretchComputer(g)
        h = g.copy()
        h.remove_node(1)  # splits {0} from {2,3}
        rep = sc.measure(h)
        assert rep.disconnected_pairs > 0
        assert rep.max_stretch == math.inf
        assert not rep.connected

    def test_tiny_graphs(self):
        g = path_graph(3)
        sc = StretchComputer(g)
        h = Graph([0])
        rep = sc.measure(h)
        assert rep.pairs == 0
        assert math.isnan(rep.max_stretch)

    def test_unknown_node_rejected(self):
        g = path_graph(3)
        sc = StretchComputer(g)
        h = Graph([99])
        with pytest.raises(ConfigurationError):
            sc.measure(h)

    def test_healing_shortcut_keeps_stretch_low(self):
        """Path 0-1-2-3-4; deleting 2 and bridging 1-3 gives max stretch
        of exactly 1 (the bridge replaces the two-hop detour)."""
        g = path_graph(5)
        sc = StretchComputer(g)
        h = g.copy()
        h.remove_node(2)
        h.add_edge(1, 3)
        rep = sc.measure(h)
        assert rep.max_stretch == 1.0


class TestSampledStretch:
    def test_sampled_is_lower_bound_of_exact(self):
        g = preferential_attachment(60, 2, seed=1)
        h = g.copy()
        # perturb: delete a few nodes and patch with a hub
        for v in (50, 51, 52):
            nbrs = sorted(h.neighbors(v))
            h.remove_node(v)
            for i in range(1, len(nbrs)):
                h.add_edge(nbrs[0], nbrs[i])
        exact = StretchComputer(g).measure(h)
        sampled = StretchComputer(g, sample_sources=10, seed=3).measure(h)
        assert sampled.max_stretch <= exact.max_stretch + 1e-9

    def test_sample_larger_than_alive_falls_back_to_exact(self):
        g = path_graph(5)
        exact = StretchComputer(g).measure(g.copy())
        sampled = StretchComputer(g, sample_sources=100, seed=0).measure(
            g.copy()
        )
        assert sampled == exact

    def test_invalid_sample_count(self):
        with pytest.raises(ConfigurationError):
            StretchComputer(path_graph(3), sample_sources=0)
