"""Tests for trace record/persist/replay."""

from __future__ import annotations

import pytest

from repro.adversary import RandomAttack
from repro.core.dash import Dash
from repro.errors import SimulationError
from repro.graph.generators import preferential_attachment
from repro.api import run_campaign
from repro.sim.trace import (
    TraceRecorder,
    load_trace,
    replay_trace,
    save_trace,
)


def record_campaign(n=25, seed=3):
    g = preferential_attachment(n, 2, seed=seed)
    recorder = TraceRecorder(g.copy(), "dash", id_seed=seed)
    result = run_campaign(
        g, Dash(), RandomAttack(seed=seed), id_seed=seed, metrics=[recorder]
    )
    return recorder.trace, result


class TestRecording:
    def test_trace_captures_everything(self):
        trace, result = record_campaign()
        assert trace.healer == "dash"
        assert len(trace.victims) == result.deletions
        assert len(trace.fingerprints) == result.deletions
        assert trace.initial_graph().num_nodes == 25

    def test_initial_graph_round_trip(self):
        g = preferential_attachment(20, 2, seed=1)
        g.add_node(999)  # isolated node survives the round trip
        rec = TraceRecorder(g, "dash", id_seed=0)
        assert rec.trace.initial_graph() == g


class TestPersistence:
    def test_json_round_trip(self, tmp_path):
        trace, _ = record_campaign()
        p = save_trace(trace, tmp_path / "run.trace.json")
        loaded = load_trace(p)
        assert loaded == trace

    def test_bad_format_rejected(self, tmp_path):
        p = tmp_path / "junk.json"
        p.write_text('{"format": "something-else"}')
        with pytest.raises(SimulationError, match="not a repro trace"):
            load_trace(p)


class TestReplay:
    def test_faithful_replay_verifies(self):
        trace, original = record_campaign()
        replayed = replay_trace(trace)
        assert replayed.deletions == original.deletions
        assert replayed.peak_delta == original.peak_delta

    def test_divergence_detected(self):
        trace, _ = record_campaign()
        trace.fingerprints[3][1] += 1  # corrupt a fingerprint
        with pytest.raises(SimulationError, match="diverged at round 4"):
            replay_trace(trace)

    def test_round_count_mismatch_detected(self):
        trace, _ = record_campaign()
        trace.fingerprints.append(["binary-tree", 0, 0])
        with pytest.raises(SimulationError, match="rounds"):
            replay_trace(trace)

    def test_cross_healer_replay(self):
        """Replaying the same victims against another healer is the paired
        comparison tool; fingerprints are not checked."""
        trace, _ = record_campaign()
        other = replay_trace(trace, healer_name="line-heal")
        assert other.deletions == len(trace.victims)

    def test_replay_after_persistence(self, tmp_path):
        trace, original = record_campaign()
        loaded = load_trace(save_trace(trace, tmp_path / "t.json"))
        replayed = replay_trace(loaded)
        assert replayed.peak_delta == original.peak_delta
