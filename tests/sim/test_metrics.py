"""Tests for the metric trackers."""

from __future__ import annotations


from repro.adversary import RandomAttack, ScriptedAttack
from repro.core.dash import Dash
from repro.core.naive import GraphHeal, NoHeal
from repro.graph.generators import preferential_attachment, star_graph
from repro.sim.metrics import (
    ComponentMetric,
    ConnectivityMetric,
    DegreeMetric,
    EdgeBudgetMetric,
    IdChangeMetric,
    LatencyMetric,
    MessageMetric,
    StretchMetric,
    default_metrics,
)
from repro.api import run_campaign


def run_with(graph, healer, adversary, metrics, **kw):
    return run_campaign(graph, healer, adversary, metrics=metrics, **kw)


class TestDegreeMetric:
    def test_peak_vs_final(self):
        g = star_graph(5)
        res = run_with(
            g, Dash(), ScriptedAttack([0]), [DegreeMetric()]
        )
        assert res["max_degree_increase"] == 1.0
        assert res["final_max_degree_increase"] <= res["max_degree_increase"]


class TestIdChangeMetric:
    def test_star_hub_deletion(self):
        """Deleting the hub merges 4 singleton components: 3 nodes adopt
        the minimum ID → total 3, max 1."""
        g = star_graph(5)
        res = run_with(g, Dash(), ScriptedAttack([0]), [IdChangeMetric()])
        assert res["total_id_changes"] == 3.0
        assert res["max_id_changes"] == 1.0


class TestMessageMetric:
    def test_counts_sent_plus_received(self):
        g = star_graph(3)  # hub 0, leaves 1, 2
        res = run_with(g, Dash(), ScriptedAttack([0]), [MessageMetric()])
        # one of {1,2} adopts the other's ID and tells its single neighbor:
        # sent=1 for the adopter, received=1 for the other → max 1.
        assert res["total_messages_sent"] == 1.0
        assert res["max_messages"] == 1.0


class TestLatencyMetric:
    def test_amortized_is_mean_of_rounds(self):
        g = star_graph(5)
        res = run_with(g, Dash(), ScriptedAttack([0]), [LatencyMetric()])
        assert res["total_propagation"] == 3.0
        assert res["amortized_propagation"] == 3.0  # one round
        assert res["max_round_propagation"] == 3.0


class TestConnectivityMetric:
    def test_dash_always_connected(self):
        g = preferential_attachment(20, 2, seed=0)
        res = run_with(
            g, Dash(), RandomAttack(seed=0), [ConnectivityMetric()]
        )
        assert res["always_connected"] == 1.0
        assert res["first_disconnect_step"] == -1.0

    def test_noheal_disconnects(self):
        g = star_graph(6)
        res = run_with(
            g, NoHeal(), ScriptedAttack([0]), [ConnectivityMetric()]
        )
        assert res["always_connected"] == 0.0
        assert res["first_disconnect_step"] == 1.0

    def test_period_skips_checks_but_finalize_catches(self):
        g = star_graph(6)
        res = run_with(
            g, NoHeal(), ScriptedAttack([0]), [ConnectivityMetric(period=10)]
        )
        assert res["always_connected"] == 0.0


class TestComponentMetric:
    def test_counts_fragments(self):
        g = star_graph(6)
        res = run_with(g, NoHeal(), ScriptedAttack([0]), [ComponentMetric()])
        assert res["max_components"] == 5.0


class TestEdgeBudgetMetric:
    def test_graph_heal_spends_more(self):
        res_by_healer = {}
        for healer in (Dash(), GraphHeal()):
            g = preferential_attachment(30, 3, seed=1)
            res = run_with(
                g, healer, RandomAttack(seed=1), [EdgeBudgetMetric()]
            )
            res_by_healer[healer.name] = res["healing_edges_planned"]
        assert res_by_healer["graph-heal"] > res_by_healer["dash"]

    def test_max_per_round(self):
        g = star_graph(6)
        res = run_with(g, Dash(), ScriptedAttack([0]), [EdgeBudgetMetric()])
        assert res["max_edges_per_round"] == 4.0  # binary tree over 5


class TestStretchMetric:
    def test_records_running_max(self):
        g = preferential_attachment(25, 2, seed=2)
        metric = StretchMetric(g.copy(), period=1)
        res = run_with(g, Dash(), RandomAttack(seed=2), [metric])
        assert res["max_stretch"] >= 1.0
        assert res["stretch_ever_disconnected"] == 0.0

    def test_disconnection_flagged(self):
        g = star_graph(8)
        metric = StretchMetric(g.copy(), period=1, min_alive_fraction=0.0)
        res = run_with(g, NoHeal(), ScriptedAttack([0]), [metric])
        assert res["stretch_ever_disconnected"] == 1.0

    def test_period_respected(self):
        g = preferential_attachment(20, 2, seed=3)
        metric = StretchMetric(g.copy(), period=1000)
        res = run_with(g, Dash(), RandomAttack(seed=3), [metric])
        assert res["max_stretch"] == 0.0  # never measured


class TestDefaultMetrics:
    def test_no_duplicate_keys(self):
        g = preferential_attachment(15, 2, seed=4)
        res = run_campaign(
            g, Dash(), RandomAttack(seed=4), metrics=default_metrics()
        )
        # presence of the flagship keys
        for key in (
            "max_degree_increase",
            "max_id_changes",
            "max_messages",
            "amortized_propagation",
            "healing_edges_planned",
        ):
            assert key in res.values
