"""The pre-engine simulation loops, preserved verbatim for differential
tests (the PR-4 analogue of ``tests/core/_seed_tracker.py`` and
``tests/adversary/_scan_adversaries.py``).

These are the bodies of ``run_simulation`` and ``run_wave_simulation``
exactly as they stood before both became shims over
:func:`repro.sim.engine.run_campaign`.
``tests/sim/test_campaign_engine.py``
replays identical campaigns through the engine and through these loops
and asserts byte-identical :class:`HealEvent` streams and
:class:`SimulationResult` fields.

The one intentional divergence is the wave loop's accounting bug the
engine fixes: this seed loop hands the *raw* wave (duplicates included)
to ``delete_batch_and_heal`` and counts ``len(set(wave))``. None of the
shipped wave adversaries emit duplicates, so differential comparisons
over them are unaffected; the dedupe fix is covered by a dedicated test
with a duplicate-emitting adversary.
"""

from __future__ import annotations

from typing import Sequence

from repro.adversary.base import Adversary
from repro.adversary.waves import WaveAdversary
from repro.core.base import Healer
from repro.core.network import SelfHealingNetwork
from repro.errors import ConfigurationError, SimulationError
from repro.graph.graph import Graph
from repro.sim.metrics import Metric
from repro.sim.simulator import SimulationResult

__all__ = ["seed_run_simulation", "seed_run_wave_simulation"]


def seed_run_simulation(
    graph: Graph,
    healer: Healer,
    adversary: Adversary,
    *,
    id_seed: int = 0,
    metrics: Sequence[Metric] = (),
    stop_alive: int = 0,
    max_deletions: int | None = None,
    check_invariants: bool = False,
    keep_events: bool = False,
    keep_network: bool = False,
) -> SimulationResult:
    """``run_simulation`` as of PR 3 (pre-engine), verbatim."""
    if stop_alive < 0:
        raise ConfigurationError(f"stop_alive must be >= 0, got {stop_alive}")
    if max_deletions is not None and max_deletions < 0:
        raise ConfigurationError(
            f"max_deletions must be >= 0, got {max_deletions}"
        )

    network = SelfHealingNetwork(
        graph, healer, seed=id_seed, check_invariants=check_invariants
    )
    adversary.reset(network)

    deletions = 0
    while network.num_alive > max(stop_alive, 0) and network.num_alive > 0:
        if max_deletions is not None and deletions >= max_deletions:
            break
        victim = adversary.choose_target(network)
        if victim is None:
            break
        if not network.graph.has_node(victim):
            raise SimulationError(
                f"adversary {adversary.name} chose dead node {victim!r}"
            )
        event = network.delete_and_heal(victim)
        deletions += 1
        for metric in metrics:
            metric.on_event(network, event)

    values: dict[str, float] = {}
    for metric in metrics:
        out = metric.finalize(network)
        overlap = values.keys() & out.keys()
        if overlap:
            raise ConfigurationError(
                f"duplicate metric names: {sorted(overlap)}"
            )
        values.update(out)

    return SimulationResult(
        initial_n=network.initial_n,
        deletions=deletions,
        final_alive=network.num_alive,
        peak_delta=network.peak_delta,
        values=values,
        events=list(network.events) if keep_events else None,
        network=network if keep_network else None,
    )


def seed_run_wave_simulation(
    graph: Graph,
    healer: Healer,
    adversary: WaveAdversary,
    *,
    id_seed: int = 0,
    metrics: Sequence[Metric] = (),
    stop_alive: int = 0,
    max_waves: int | None = None,
    check_invariants: bool = False,
    keep_events: bool = False,
    keep_network: bool = False,
    batch_fast_path: bool = True,
) -> SimulationResult:
    """``run_wave_simulation`` as of PR 3 (pre-engine), verbatim."""
    if stop_alive < 0:
        raise ConfigurationError(f"stop_alive must be >= 0, got {stop_alive}")
    if max_waves is not None and max_waves < 0:
        raise ConfigurationError(f"max_waves must be >= 0, got {max_waves}")

    network = SelfHealingNetwork(
        graph,
        healer,
        seed=id_seed,
        check_invariants=check_invariants,
        batch_fast_path=batch_fast_path,
    )
    adversary.reset(network)

    waves = 0
    deletions = 0
    while network.num_alive > stop_alive:
        if max_waves is not None and waves >= max_waves:
            break
        wave = adversary.choose_wave(network)
        if not wave:
            break
        for victim in wave:
            if not network.graph.has_node(victim):
                raise SimulationError(
                    f"adversary {adversary.name} chose dead node {victim!r}"
                )
        events = network.delete_batch_and_heal(wave)
        waves += 1
        deletions += len(set(wave))
        for metric in metrics:
            for event in events:
                metric.on_event(network, event)

    values: dict[str, float] = {"waves": float(waves)}
    for metric in metrics:
        out = metric.finalize(network)
        overlap = values.keys() & out.keys()
        if overlap:
            raise ConfigurationError(
                f"duplicate metric names: {sorted(overlap)}"
            )
        values.update(out)

    return SimulationResult(
        initial_n=network.initial_n,
        deletions=deletions,
        final_alive=network.num_alive,
        peak_delta=network.peak_delta,
        values=values,
        events=list(network.events) if keep_events else None,
        network=network if keep_network else None,
    )
