"""Tests for the supervised worker pool (retry, timeout, broken-pool
recovery, per-cell failure reports)."""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

import pytest

from repro.errors import SweepExecutionError
from repro.sim.parallel import (
    CellFailure,
    RetryPolicy,
    default_jobs,
    run_tasks,
)


class _Spec:
    """Minimal stand-in for ExperimentSpec in cell tuples (picklable)."""

    name = "toy"


def _tasks(count: int):
    return [(_Spec(), 10, "dash", rep) for rep in range(count)]


# Workers live at module level so the pool's fork/pickle round-trip
# resolves them by qualified name.

def ok_worker(task):
    spec, size, healer, rep = task
    return ({"size": size, "rep": rep}, {"v": float(rep)})


def fail_rep1_worker(task):
    spec, size, healer, rep = task
    if rep == 1:
        raise ValueError("cell 1 always fails")
    return ok_worker(task)


def flaky_until_retry_worker(task):
    # Fails on the first attempt of each cell, succeeds on retry —
    # distinguished via a per-cell sentinel file.
    spec, size, healer, rep = task
    sentinel = Path(os.environ["FLAKY_DIR"]) / f"tried-{rep}"
    if not sentinel.exists():
        sentinel.touch()
        raise RuntimeError("transient")
    return ok_worker(task)


def sigkill_once_worker(task):
    spec, size, healer, rep = task
    sentinel = Path(os.environ["KILL_DIR"]) / "killed"
    if rep == 2 and not sentinel.exists():
        sentinel.touch()
        os.kill(os.getpid(), signal.SIGKILL)
    return ok_worker(task)


def slow_rep0_worker(task):
    spec, size, healer, rep = task
    if rep == 0:
        time.sleep(10)
    return ok_worker(task)


class TestSerial:
    def test_results_in_task_order(self):
        out = run_tasks(_tasks(4), jobs=1, worker=ok_worker)
        assert [p["rep"] for p, _ in out] == [0, 1, 2, 3]

    def test_permanent_failure_reports_cell_and_keeps_rest(self):
        with pytest.raises(SweepExecutionError) as exc_info:
            run_tasks(
                _tasks(4), jobs=1, worker=fail_rep1_worker,
                retries=1, backoff=0.0,
            )
        err = exc_info.value
        assert len(err.failures) == 1
        failure = err.failures[0]
        assert isinstance(failure, CellFailure)
        assert failure.cell == ("toy", 10, "dash", 1)
        assert failure.attempts == 2  # 1 try + 1 retry
        assert "cell 1 always fails" in failure.error
        assert sorted(err.completed) == [0, 2, 3]
        assert "('toy', 10, 'dash', 1)" in str(err)

    def test_transient_failure_retried_to_success(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("FLAKY_DIR", str(tmp_path))
        out = run_tasks(
            _tasks(3), jobs=1, worker=flaky_until_retry_worker,
            retries=1, backoff=0.0,
        )
        assert [p["rep"] for p, _ in out] == [0, 1, 2]

    def test_zero_retries_fails_immediately(self):
        with pytest.raises(SweepExecutionError) as exc_info:
            run_tasks(
                _tasks(2), jobs=1, worker=fail_rep1_worker,
                retries=0, backoff=0.0,
            )
        assert exc_info.value.failures[0].attempts == 1

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            run_tasks(_tasks(1), jobs=1, retries=-1)


class TestRetryPolicy:
    def test_defaults_match_legacy_arguments(self):
        policy = RetryPolicy()
        assert (policy.retries, policy.backoff) == (2, 0.5)

    def test_delay_is_exponential(self):
        policy = RetryPolicy(retries=3, backoff=0.25)
        assert [policy.delay(k) for k in (1, 2, 3)] == [0.25, 0.5, 1.0]

    def test_exhausted(self):
        policy = RetryPolicy(retries=2)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)

    def test_none_and_immediate_constructors(self):
        assert RetryPolicy.none() == RetryPolicy(retries=0, backoff=0.0)
        fast = RetryPolicy.immediate(retries=4)
        assert (fast.retries, fast.backoff) == (4, 0.0)
        assert fast.delay(3) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-0.1)

    def test_run_tasks_accepts_a_policy(self):
        with pytest.raises(SweepExecutionError) as exc_info:
            run_tasks(
                _tasks(2), jobs=1, worker=fail_rep1_worker,
                retry_policy=RetryPolicy.immediate(retries=1),
            )
        assert exc_info.value.failures[0].attempts == 2

    def test_policy_conflicts_with_legacy_arguments(self):
        with pytest.raises(ValueError, match="not both"):
            run_tasks(
                _tasks(1), jobs=1, worker=ok_worker,
                retries=1, retry_policy=RetryPolicy.none(),
            )


class TestParallel:
    def test_results_in_task_order(self):
        out = run_tasks(_tasks(6), jobs=2, worker=ok_worker)
        assert [p["rep"] for p, _ in out] == [0, 1, 2, 3, 4, 5]

    def test_failure_report_matches_serial_semantics(self):
        with pytest.raises(SweepExecutionError) as exc_info:
            run_tasks(
                _tasks(4), jobs=2, worker=fail_rep1_worker,
                retries=1, backoff=0.0,
            )
        err = exc_info.value
        assert [f.cell for f in err.failures] == [("toy", 10, "dash", 1)]
        assert sorted(err.completed) == [0, 2, 3]

    def test_transient_failures_retried_across_processes(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("FLAKY_DIR", str(tmp_path))
        out = run_tasks(
            _tasks(4), jobs=2, worker=flaky_until_retry_worker,
            retries=2, backoff=0.0,
        )
        assert [p["rep"] for p, _ in out] == [0, 1, 2, 3]

    def test_sigkilled_worker_requeues_lost_cells(
        self, tmp_path, monkeypatch
    ):
        # A hard-killed worker breaks the whole executor; the supervisor
        # must rebuild the pool and finish every cell — including the
        # one that was being murdered — without losing results.
        monkeypatch.setenv("KILL_DIR", str(tmp_path))
        out = run_tasks(
            _tasks(6), jobs=2, worker=sigkill_once_worker, backoff=0.0,
        )
        assert [p["rep"] for p, _ in out] == [0, 1, 2, 3, 4, 5]

    @pytest.mark.skipif(
        not hasattr(signal, "SIGALRM"), reason="needs POSIX SIGALRM"
    )
    def test_timeout_aborts_and_reports(self):
        with pytest.raises(SweepExecutionError) as exc_info:
            run_tasks(
                _tasks(3), jobs=2, worker=slow_rep0_worker,
                timeout=0.3, retries=0, backoff=0.0,
            )
        err = exc_info.value
        assert err.failures[0].cell == ("toy", 10, "dash", 0)
        assert "TimeoutError" in err.failures[0].error
        assert sorted(err.completed) == [1, 2]

    def test_empty_task_list(self):
        assert run_tasks([], jobs=2, worker=ok_worker) == []


class TestRealSweepCells:
    """The default worker path, end to end through run_task."""

    def test_serial_equals_parallel(self):
        from repro.sim.experiment import ExperimentSpec, expand_tasks

        spec = ExperimentSpec(
            name="sup",
            generator="erdos_renyi",
            generator_params={"p": 0.1},
            sizes=(24,),
            healers=("dash",),
            adversary="max-node",
            repetitions=2,
        )
        tasks = expand_tasks(spec)
        assert run_tasks(tasks, jobs=1) == run_tasks(tasks, jobs=2)


def test_default_jobs_bounded():
    assert 1 <= default_jobs() <= 8
