"""Tests for the weight/rem potential machinery (Lemmas 2–5)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adversary import NeighborOfMaxAttack, RandomAttack
from repro.analysis.weights import WeightTracker, rem, subtree_weight
from repro.core.dash import Dash
from repro.core.network import SelfHealingNetwork
from repro.core.sdash import Sdash
from repro.errors import SimulationError
from repro.graph.generators import preferential_attachment, star_graph
from repro.graph.graph import Graph


class TestSubtreeWeight:
    def test_hand_built(self):
        #   1 - 2 - 3    weights all 1
        gp = Graph.from_edges([(1, 2), (2, 3)])
        w = {1: 1.0, 2: 1.0, 3: 1.0}
        assert subtree_weight(gp, w, 1, avoid=2) == 1.0
        assert subtree_weight(gp, w, 3, avoid=2) == 1.0
        assert subtree_weight(gp, w, 2, avoid=1) == 2.0

    def test_rem_leaf_vs_center(self):
        gp = Graph.from_edges([(1, 2), (2, 3)])
        w = {1: 1.0, 2: 1.0, 3: 1.0}
        # center: branches weigh 1 and 1; rem = 2 - 1 + 1 = 2
        assert rem(gp, w, 2) == 2.0
        # leaf: single branch of weight 2; rem = 2 - 2 + 1 = 1
        assert rem(gp, w, 1) == 1.0

    def test_rem_isolated(self):
        gp = Graph([5])
        assert rem(gp, {5: 3.0}, 5) == 3.0


class TestWeightTransfer:
    def test_conserved_while_component_lives(self):
        g = preferential_attachment(30, 2, seed=1)
        net = SelfHealingNetwork(g, Dash(), seed=1)
        wt = WeightTracker(net)
        rng = random.Random(0)
        while net.num_alive > 1:
            v = rng.choice(sorted(net.graph.nodes()))
            wt.observe_deletion(net.snapshot_neighborhood(v))
            net.delete_and_heal(v)
            # DASH keeps one component; no weight ever leaks.
            assert wt.total_weight() == pytest.approx(30.0)

    def test_isolated_weight_leaves_system(self):
        g = Graph([1, 2])
        net = SelfHealingNetwork(g, Dash(), seed=0)
        wt = WeightTracker(net)
        wt.observe_deletion(net.snapshot_neighborhood(1))
        net.delete_and_heal(1)
        assert wt.total_weight() == pytest.approx(1.0)

    def test_double_observe_raises(self):
        g = star_graph(3)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        snap = net.snapshot_neighborhood(1)
        wt = WeightTracker(net)
        wt.observe_deletion(snap)
        with pytest.raises(SimulationError):
            wt.observe_deletion(snap)


class TestLemmas:
    @pytest.mark.parametrize(
        "healer_cls", [Dash, Sdash], ids=["dash", "sdash"]
    )
    def test_lemma4_and_5_hold_under_nms(self, healer_cls):
        g = preferential_attachment(50, 2, seed=4)
        net = SelfHealingNetwork(g, healer_cls(), seed=4)
        wt = WeightTracker(net)
        adv = NeighborOfMaxAttack(seed=7)
        adv.reset(net)
        while net.num_alive > 1:
            v = adv.choose_target(net)
            wt.observe_deletion(net.snapshot_neighborhood(v))
            net.delete_and_heal(v)
            wt.check_lemma4()
            wt.check_lemma5()

    @given(st.integers(0, 300))
    def test_property_lemma4_random_attack(self, seed):
        g = preferential_attachment(20, 2, seed=seed)
        net = SelfHealingNetwork(g, Dash(), seed=seed)
        wt = WeightTracker(net)
        adv = RandomAttack(seed=seed)
        adv.reset(net)
        while net.num_alive > 1:
            v = adv.choose_target(net)
            wt.observe_deletion(net.snapshot_neighborhood(v))
            net.delete_and_heal(v)
        wt.check_lemma4()
        wt.check_lemma5()

    def test_lemma2_rem_nondecreasing_for_survivors(self):
        """Spot-check Lemma 2: rem(v) never decreases while v survives."""
        g = preferential_attachment(25, 2, seed=6)
        net = SelfHealingNetwork(g, Dash(), seed=6)
        wt = WeightTracker(net)
        rng = random.Random(2)
        prev: dict = {}
        while net.num_alive > 2:
            v = rng.choice(sorted(net.graph.nodes()))
            wt.observe_deletion(net.snapshot_neighborhood(v))
            net.delete_and_heal(v)
            current = {u: wt.rem_of(u) for u in net.graph.nodes()}
            for u, r in current.items():
                if u in prev:
                    assert r >= prev[u] - 1e-9, u
            prev = current
