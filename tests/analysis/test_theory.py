"""Tests for the closed-form theory envelopes."""

from __future__ import annotations

import math

import pytest

from repro.analysis.theory import (
    dash_degree_bound,
    expected_records,
    harmonic,
    id_change_bound,
    kary_depth,
    levelattack_forced_increase,
    message_bound,
)
from repro.graph.generators import kary_tree_size


class TestDegreeBound:
    def test_values(self):
        assert dash_degree_bound(2) == 2.0
        assert dash_degree_bound(1024) == 20.0
        assert dash_degree_bound(1) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            dash_degree_bound(0)

    def test_monotone(self):
        vals = [dash_degree_bound(n) for n in (2, 4, 8, 100, 1000)]
        assert vals == sorted(vals)


class TestIdChangeBound:
    def test_values(self):
        assert id_change_bound(1) == 0.0
        assert id_change_bound(math.e.__ceil__()) > 0

    def test_matches_formula(self):
        assert id_change_bound(100) == pytest.approx(2 * math.log(100))


class TestMessageBound:
    def test_zero_for_tiny(self):
        assert message_bound(5, 1) == 0.0

    def test_grows_with_degree(self):
        assert message_bound(10, 100) > message_bound(1, 100)


class TestHarmonicRecords:
    def test_harmonic_values(self):
        assert harmonic(0) == 0.0
        assert harmonic(1) == 1.0
        assert harmonic(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_harmonic_close_to_ln(self):
        assert harmonic(1000) == pytest.approx(math.log(1000), abs=0.6)

    def test_expected_records_is_harmonic(self):
        assert expected_records(10) == harmonic(10)

    def test_invalid(self):
        with pytest.raises(ValueError):
            harmonic(-1)


class TestKaryDepth:
    def test_exact_sizes(self):
        for b in (2, 3, 4):
            for d in range(5):
                assert kary_depth(b, kary_tree_size(b, d)) == d

    def test_between_sizes(self):
        # 14 nodes fit depth 2 of a 3-ary tree (13) but not depth 3 (40)
        assert kary_depth(3, 14) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            kary_depth(1, 5)
        with pytest.raises(ValueError):
            kary_depth(3, 0)


class TestForcedIncrease:
    def test_matches_depth(self):
        n = kary_tree_size(3, 4)
        assert levelattack_forced_increase(1, n) == 4

    def test_log_growth(self):
        a = levelattack_forced_increase(1, 40)
        b = levelattack_forced_increase(1, 40 * 27)
        assert b >= a + 2  # three extra levels of a 3-ary tree
