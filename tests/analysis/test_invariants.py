"""Tests for executable paper invariants (incl. Lemma 10)."""

from __future__ import annotations

import random

import pytest

from repro.analysis.invariants import (
    check_component_labels,
    check_connectivity_invariant,
    check_degree_bound,
    check_degree_index,
    check_forest_invariant,
    check_healing_subset,
    lemma10_degree_sum_delta,
)
from repro.core.dash import Dash
from repro.core.naive import GraphHeal, LineHeal, NoHeal
from repro.core.network import SelfHealingNetwork
from repro.errors import InvariantViolation
from repro.graph.generators import (
    preferential_attachment,
    random_tree,
    star_graph,
)


class TestCheckers:
    def test_all_pass_on_healthy_dash_run(self):
        g = preferential_attachment(30, 2, seed=0)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        rng = random.Random(1)
        for _ in range(15):
            net.delete_and_heal(rng.choice(sorted(net.graph.nodes())))
        check_forest_invariant(net)
        check_connectivity_invariant(net)
        check_component_labels(net)
        check_degree_index(net)
        check_degree_bound(net)
        check_healing_subset(net)

    def test_degree_index_violation_detected(self):
        g = preferential_attachment(20, 2, seed=6)
        net = SelfHealingNetwork(g, Dash(), seed=6)
        net.delete_and_heal(next(iter(net.graph.nodes())))
        check_degree_index(net)
        # Wipe the δ-index's bucket storage: every live node is now
        # missing from the index, which the scan comparison must flag
        # unconditionally (no dependence on any node's δ history).
        net._delta_index._heaps.clear()
        net._delta_index._staged.clear()
        with pytest.raises(InvariantViolation):
            check_degree_index(net)

    def test_forest_violation_detected(self):
        g = preferential_attachment(30, 3, seed=2)
        net = SelfHealingNetwork(g, GraphHeal(), seed=2)
        rng = random.Random(3)
        with pytest.raises(InvariantViolation):
            while net.num_alive > 2:
                net.delete_and_heal(rng.choice(sorted(net.graph.nodes())))
                check_forest_invariant(net)

    def test_connectivity_violation_detected(self):
        g = star_graph(6)
        net = SelfHealingNetwork(g, NoHeal(), seed=0)
        net.delete_and_heal(0)
        with pytest.raises(InvariantViolation):
            check_connectivity_invariant(net)

    def test_component_label_violation_detected(self):
        g = preferential_attachment(20, 2, seed=4)
        net = SelfHealingNetwork(g, Dash(), seed=4)
        net.delete_and_heal(next(iter(net.graph.nodes())))
        check_component_labels(net)
        # Corrupt G′ behind the tracker's back: join two components the
        # tracker still believes are separate.
        labels = net.tracker.labels()
        a = next(iter(labels))
        b = next(u for u in labels if labels[u] != labels[a])
        net.healing_graph.add_edge(a, b)
        with pytest.raises(InvariantViolation):
            check_component_labels(net)

    def test_degree_bound_factor(self):
        g = star_graph(4)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        net.delete_and_heal(0)  # peak δ = 1
        check_degree_bound(net)  # 1 ≤ 2 log2 4 = 4
        with pytest.raises(InvariantViolation):
            check_degree_bound(net, factor=0.1)  # bound 0.4 < 1


class TestLemma10:
    @pytest.mark.parametrize(
        "healer_cls", [Dash, LineHeal], ids=["dash", "line"]
    )
    def test_tree_deletion_degree_sum_is_d_minus_2(self, healer_cls):
        """Lemma 10: on a tree, a locality-aware acyclic heal of a degree-d
        deletion raises the ex-neighbors' total degree by exactly d−2."""
        g = random_tree(40, seed=9)
        net = SelfHealingNetwork(g, healer_cls(), seed=9)
        rng = random.Random(4)
        for _ in range(20):
            candidates = [
                u for u in net.graph.nodes() if net.graph.degree(u) >= 1
            ]
            if not candidates:
                break
            v = rng.choice(sorted(candidates))
            d = net.graph.degree(v)
            before = net.graph.copy()
            net.delete_and_heal(v)
            change = lemma10_degree_sum_delta(before, net.graph, v)
            assert change == d - 2, (v, d)

    def test_missing_node_raises(self):
        g = random_tree(5, seed=0)
        with pytest.raises(InvariantViolation):
            lemma10_degree_sum_delta(g, g, 99)
