"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_args(self):
        args = build_parser().parse_args(
            ["figure", "fig8", "--sizes", "10", "20", "--reps", "2"]
        )
        assert args.name == "fig8"
        assert args.sizes == [10, 20]

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dash" in out
        assert "neighbor-of-max" in out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "nope"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_simulate(self, capsys):
        rc = main(
            [
                "simulate",
                "--n",
                "20",
                "--healer",
                "dash",
                "--adversary",
                "random",
                "--seed",
                "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "peak δ" in out
        assert "max_degree_increase" in out

    def test_simulate_wave_adversary(self, capsys):
        rc = main(
            [
                "simulate",
                "--n",
                "30",
                "--adversary",
                "random-wave",
                "--wave-size",
                "4",
                "--max-waves",
                "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "waves" in out
        assert "deletions        : 8" in out

    def test_simulate_wave_rejects_max_deletions(self, capsys):
        rc = main(
            [
                "simulate",
                "--n",
                "30",
                "--adversary",
                "random-wave",
                "--max-deletions",
                "5",
            ]
        )
        assert rc == 2
        assert "--max-waves" in capsys.readouterr().err

    def test_figure_theorem2(self, capsys):
        rc = main(["figure", "theorem2", "--depths", "2", "--quiet"])
        assert rc == 0
        assert "LEVELATTACK" in capsys.readouterr().out

    def test_figure_small_fig8(self, capsys, tmp_path):
        rc = main(
            [
                "figure",
                "fig8",
                "--sizes",
                "12",
                "--reps",
                "2",
                "--quiet",
                "--out",
                str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig8" in out
        assert (tmp_path / "fig8.csv").exists()
