"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_args(self):
        args = build_parser().parse_args(
            ["figure", "fig8", "--sizes", "10", "20", "--reps", "2"]
        )
        assert args.name == "fig8"
        assert args.sizes == [10, 20]

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dash" in out
        assert "neighbor-of-max" in out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "nope"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_simulate(self, capsys):
        rc = main(
            [
                "simulate",
                "--n",
                "20",
                "--healer",
                "dash",
                "--adversary",
                "random",
                "--seed",
                "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "peak δ" in out
        assert "max_degree_increase" in out

    def test_simulate_wave_adversary(self, capsys):
        rc = main(
            [
                "simulate",
                "--n",
                "30",
                "--adversary",
                "random-wave",
                "--wave-size",
                "4",
                "--max-waves",
                "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "waves" in out
        assert "deletions        : 8" in out

    def test_simulate_wave_rejects_max_deletions(self, capsys):
        rc = main(
            [
                "simulate",
                "--n",
                "30",
                "--adversary",
                "random-wave",
                "--max-deletions",
                "5",
            ]
        )
        assert rc == 2
        assert "--max-waves" in capsys.readouterr().err

    def test_simulate_single_rejects_max_waves(self, capsys):
        rc = main(
            ["simulate", "--n", "30", "--adversary", "random",
             "--max-waves", "2"]
        )
        assert rc == 2
        assert "--max-deletions" in capsys.readouterr().err

    def test_simulate_adversary_spec_string(self, capsys):
        rc = main(
            [
                "simulate",
                "--n",
                "40",
                "--adversary",
                "random-wave:size=5,schedule=constant",
                "--max-waves",
                "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "deletions        : 10" in out

    def test_simulate_generator_spec_string(self, capsys):
        rc = main(
            [
                "simulate",
                "--n",
                "24",
                "--generator",
                "erdos_renyi:p=0.3",
                "--adversary",
                "random",
            ]
        )
        assert rc == 0
        assert "peak δ" in capsys.readouterr().out

    def test_simulate_unknown_component_exits_2(self, capsys):
        rc = main(["simulate", "--healer", "nope"])
        assert rc == 2
        assert "available" in capsys.readouterr().err

    def test_simulate_bad_spec_argument_exits_2(self, capsys):
        rc = main(["simulate", "--adversary", "random:bogus=1"])
        assert rc == 2
        assert "random" in capsys.readouterr().err

    def test_list_shows_all_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for family in (
            "figures", "healers", "adversaries", "generators",
            "wave schedules", "metrics",
        ):
            assert family in out
        assert "geometric" in out
        assert "connectivity" in out

    def test_figure_theorem2(self, capsys):
        rc = main(["figure", "theorem2", "--depths", "2", "--quiet"])
        assert rc == 0
        assert "LEVELATTACK" in capsys.readouterr().out

    def test_figure_small_fig8(self, capsys, tmp_path):
        rc = main(
            [
                "figure",
                "fig8",
                "--sizes",
                "12",
                "--reps",
                "2",
                "--quiet",
                "--out",
                str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig8" in out
        assert (tmp_path / "fig8.csv").exists()
