"""Distributed engine vs. centralized simulator: message-kind accounting.

``tests/distributed/test_protocol.py`` drives the two implementations in
lockstep through hand-rolled loops; this module closes the remaining
coverage gap by running the **campaign engine**
(:func:`~repro.sim.engine.run_campaign` with a
:class:`~repro.adversary.scripted.ScriptedAttack`) and the
:class:`~repro.distributed.network.DistributedNetwork` protocol from
*shared seeds* and comparing the per-kind message counters the
:class:`~repro.distributed.engine.SyncEngine` keeps against the
centralized tracker's accounting:

* ``ID_UPDATE`` traffic (Lemma 8's quantity) must match the tracker's
  per-node and total message counts exactly;
* ``DELETION`` oracle notices must equal the victims' pre-deletion
  degrees (one notice per neighbor, the failure-detection model);
* per-node and total ID-change counts must agree;
* ``STATE`` (NoN-maintenance) overhead exists only on the distributed
  side — the paper takes it as given, and the engine reports it
  separately so the comparison stays honest.

Also pins the :class:`SyncEngine` seeding bugfix: the jitter RNG now
comes from :func:`repro.utils.rng.make_rng` and equal seeds give equal
delivery orders.
"""

from __future__ import annotations

import pytest

from repro.adversary.scripted import ScriptedAttack
from repro.core.dash import Dash
from repro.core.naive import BinaryTreeHeal, LineHeal
from repro.core.sdash import Sdash
from repro.distributed import DistributedNetwork, MsgKind
from repro.distributed.engine import SyncEngine
from repro.distributed.messages import Message
from repro.graph.generators import erdos_renyi, preferential_attachment
from repro.sim.engine import run_campaign
from repro.utils.rng import make_rng


def shared_kill_order(graph, master_seed, count):
    """A seed-derived deletion order both implementations replay."""
    victims = sorted(graph.nodes())
    make_rng(master_seed).shuffle(victims)
    return victims[:count]


def run_both(make_graph, healer_cls, *, master_seed, kills):
    """Drive engine-campaign and protocol from the same seeds/victims."""
    graph = make_graph()
    victims = shared_kill_order(graph, master_seed, kills)

    result = run_campaign(
        graph.copy(),
        healer_cls(),
        ScriptedAttack(victims),
        id_seed=master_seed,
        keep_events=True,
        keep_network=True,
    )

    dis = DistributedNetwork(graph.copy(), healer_cls, seed=master_seed)
    expected_notices = 0
    for v in victims:
        expected_notices += len(dis.processes[v].g_adj)
        dis.delete(v)
    return result, dis, victims, expected_notices


HEALERS = [Dash, Sdash, BinaryTreeHeal, LineHeal]


@pytest.mark.parametrize("healer_cls", HEALERS, ids=lambda c: c.name)
def test_engine_campaign_matches_protocol_message_kinds(healer_cls):
    result, dis, victims, expected_notices = run_both(
        lambda: preferential_attachment(26, 2, seed=11),
        healer_cls,
        master_seed=11,
        kills=16,
    )
    cen = result.network
    eng = dis.engine
    assert result.deletions == len(victims)

    # Lemma 8 traffic: the protocol's ID_UPDATE flood equals the
    # centralized MINID charge, in total and per node (dead nodes'
    # lifetime counts included — the engine never forgets a sender).
    assert eng.total_sent(MsgKind.ID_UPDATE) == cen.tracker.total_messages()
    for u, sent in cen.tracker.messages_sent.items():
        assert eng.messages_sent(u, MsgKind.ID_UPDATE) == sent
    received_total = sum(
        eng.messages_received(u, MsgKind.ID_UPDATE)
        for u in cen.tracker.messages_received
    )
    assert received_total == sum(cen.tracker.messages_received.values())

    # Failure detection: one DELETION notice per victim neighbor.
    delivered_notices = sum(
        kinds.get(MsgKind.DELETION, 0)
        for kinds in eng.received_by_node.values()
    )
    assert delivered_notices == expected_notices

    # ID-change totals (per surviving node and summed).
    for u, proc in dis.processes.items():
        assert proc.id_changes == cen.tracker.id_changes[u]
    assert sum(p.id_changes for p in dis.processes.values()) == sum(
        cen.tracker.id_changes[u] for u in dis.processes
    )

    # NoN maintenance exists only in the protocol; the per-kind split is
    # what lets the comparison above stay exact.
    assert dis.non_overhead_messages() > 0
    assert eng.total_sent(MsgKind.STATE) == dis.non_overhead_messages()


def test_equivalence_on_second_topology_family():
    """Same cross-check on an Erdős–Rényi instance (different round mix:
    denser neighborhoods, more multi-component merges)."""
    result, dis, victims, _ = run_both(
        lambda: erdos_renyi(24, 0.18, seed=7), Dash, master_seed=7, kills=14
    )
    cen = result.network
    eng = dis.engine
    assert eng.total_sent(MsgKind.ID_UPDATE) == cen.tracker.total_messages()
    labels = dis.labels()
    for u in cen.graph.nodes():
        assert labels[u] == cen.tracker.label_of(u)
        assert dis.deltas()[u] == cen.delta(u)
    assert dis.graph() == cen.graph
    assert dis.healing_graph() == cen.healing_graph


def test_sync_engine_jitter_seeding_is_reproducible():
    """The ``__import__("random")`` construction is gone: the jitter RNG
    routes through :func:`repro.utils.rng.make_rng`, so equal seeds give
    identical delivery schedules and distinct seeds may differ."""

    def delivery_trace(seed):
        engine = SyncEngine(jitter=3, seed=seed)
        log = []

        class Recorder:
            def __init__(self, me):
                self.me = me

            def handle(self, message):
                log.append((engine.rounds_elapsed, message.src, self.me))

        for u in range(4):
            engine.register(u, Recorder(u))
        for u in range(4):
            for v in range(4):
                if u != v:
                    engine.send(
                        Message(kind=MsgKind.STATE, src=u, dst=v, payload=None)
                    )
        engine.run_until_quiescent()
        return log

    assert delivery_trace(5) == delivery_trace(5)
    assert delivery_trace(5) != delivery_trace(6)
    engine_rng = SyncEngine(jitter=0, seed=0)._rng
    assert engine_rng.random() == make_rng(0).random()
