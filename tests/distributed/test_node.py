"""Unit tests for NodeProcess internals (state, snapshots, handlers)."""

from __future__ import annotations

import pytest

from repro.core.dash import Dash
from repro.distributed.engine import SyncEngine
from repro.distributed.messages import Message, MsgKind, NodeState
from repro.distributed.node import NodeProcess
from repro.errors import ProtocolError


def make_node(label=0, neighbors=(1, 2), engine=None):
    engine = engine or SyncEngine()
    proc = NodeProcess(
        node=label,
        initial_id=(0.5, label),
        neighbors=frozenset(neighbors),
        healer=Dash(),
        engine=engine,
    )
    engine.register(label, proc)
    return proc, engine


def state_of(label, *, g_adj=(), gp_adj=(), delta=0, draw=0.5):
    return NodeState(
        node=label,
        initial_id=(draw, label),
        label=(draw, label),
        delta=delta,
        g_adj=frozenset(g_adj),
        gp_adj=frozenset(gp_adj),
    )


class TestOwnState:
    def test_delta_tracks_adjacency(self):
        proc, _ = make_node(neighbors=(1, 2))
        assert proc.delta == 0
        proc.g_adj.add(3)
        assert proc.delta == 1
        proc.g_adj.discard(1)
        proc.g_adj.discard(2)
        assert proc.delta == -1

    def test_state_snapshot_immutable_copy(self):
        proc, _ = make_node()
        snap = proc.state()
        proc.g_adj.add(99)
        assert 99 not in snap.g_adj


class TestStateHandling:
    def test_learn_and_forward(self):
        proc, engine = make_node(label=0, neighbors=(1, 2))
        incoming = state_of(7, g_adj=(1,))
        proc.handle(
            Message(
                MsgKind.STATE, src=1, dst=0, payload=incoming, forward=True
            )
        )
        assert proc.known[7] == incoming
        # forwarded once to each neighbor except the sender and subject
        assert engine.messages_sent(0, MsgKind.STATE) == 1  # only to node 2

    def test_no_forward_when_flag_clear(self):
        proc, engine = make_node(label=0, neighbors=(1, 2))
        proc.handle(
            Message(
                MsgKind.STATE, src=1, dst=0, payload=state_of(7), forward=False
            )
        )
        assert engine.messages_sent(0, MsgKind.STATE) == 0


class TestIdUpdateHandling:
    def test_adopts_only_over_gprime_edge(self):
        proc, engine = make_node(label=5, neighbors=(1, 2))
        smaller = state_of(1, draw=0.1)
        # 1 is a G-neighbor but NOT a G'-neighbor: no adoption.
        proc.handle(Message(MsgKind.ID_UPDATE, src=1, dst=5, payload=smaller))
        assert proc.label == (0.5, 5)
        assert proc.id_changes == 0
        # Make it a G'-edge: adoption + flood.
        proc.gp_adj.add(1)
        proc.handle(Message(MsgKind.ID_UPDATE, src=1, dst=5, payload=smaller))
        assert proc.label == (0.1, 1)
        assert proc.id_changes == 1
        assert engine.messages_sent(5, MsgKind.ID_UPDATE) == 2  # both nbrs

    def test_ignores_larger_label(self):
        proc, _ = make_node(label=0)
        proc.gp_adj.add(1)
        bigger = state_of(1, draw=0.9)
        proc.handle(Message(MsgKind.ID_UPDATE, src=1, dst=0, payload=bigger))
        assert proc.label == (0.5, 0)
        assert proc.id_changes == 0


class TestDeletionHandling:
    def test_non_neighbor_notice_rejected(self):
        proc, _ = make_node(label=0, neighbors=(1,))
        ghost = state_of(42, g_adj=(0,))
        with pytest.raises(ProtocolError, match="non-neighbor"):
            proc.handle(
                Message(MsgKind.DELETION, src=42, dst=0, payload=ghost)
            )

    def test_missing_non_state_detected(self):
        """If the NoN tables lack a 2-hop peer, the protocol fails loudly
        instead of healing inconsistently."""
        proc, _ = make_node(label=0, neighbors=(9,))
        victim = state_of(9, g_adj=(0, 7))  # 7 unknown to us
        with pytest.raises(ProtocolError, match="lacks NoN state"):
            proc.handle(
                Message(MsgKind.DELETION, src=9, dst=0, payload=victim)
            )

    def test_leaf_deletion_no_edges(self):
        proc, engine = make_node(label=0, neighbors=(9,))
        victim = state_of(9, g_adj=(0,))
        proc.handle(Message(MsgKind.DELETION, src=9, dst=0, payload=victim))
        assert proc.g_adj == set()
        assert proc.gp_adj == set()
        assert 9 not in proc.known
