"""Asynchronous-delivery robustness: jittered messages, same outcome.

The paper's model is synchronous. Our protocol carries per-origin version
numbers on state snapshots, which makes the NoN tables reorder-safe; these
tests assert the whole campaign outcome (topology, healing edges, labels)
is *identical* under arbitrary seeded delivery jitter — i.e., the
distributed DASH implementation is correct in asynchronous networks too,
as long as healing quiesces between deletions (the paper's timing
assumption).
"""

from __future__ import annotations

import random

import pytest

from repro.core.dash import Dash
from repro.core.network import SelfHealingNetwork
from repro.core.sdash import Sdash
from repro.distributed import DistributedNetwork
from repro.graph.generators import preferential_attachment


@pytest.mark.parametrize("jitter", [1, 2, 5])
@pytest.mark.parametrize("jitter_seed", [0, 7])
def test_jittered_delivery_identical_outcome(jitter, jitter_seed):
    g = preferential_attachment(30, 2, seed=21)
    cen = SelfHealingNetwork(g.copy(), Dash(), seed=6)
    dis = DistributedNetwork(
        g.copy(), Dash, seed=6, jitter=jitter, jitter_seed=jitter_seed
    )
    rng = random.Random(4)
    while cen.num_alive > 1:
        victim = rng.choice(sorted(cen.graph.nodes()))
        cen.delete_and_heal(victim)
        dis.delete(victim)
        assert dis.graph() == cen.graph
        assert dis.healing_graph() == cen.healing_graph
        labels = dis.labels()
        for u in cen.graph.nodes():
            assert labels[u] == cen.tracker.label_of(u)


def test_jitter_changes_delivery_but_not_id_counts():
    """ID-change counts are delivery-order-invariant (MINID converges)."""
    g = preferential_attachment(25, 2, seed=9)
    runs = []
    for jitter in (0, 4):
        dis = DistributedNetwork(
            g.copy(), Dash, seed=3, jitter=jitter, jitter_seed=1
        )
        rng = random.Random(8)
        for _ in range(12):
            victim = rng.choice(sorted(p for p in dis.processes))
            dis.delete(victim)
        runs.append({u: p.id_changes for u, p in dis.processes.items()})
    assert runs[0] == runs[1]


def test_sdash_async_equivalence():
    g = preferential_attachment(25, 2, seed=13)
    cen = SelfHealingNetwork(g.copy(), Sdash(), seed=2)
    dis = DistributedNetwork(g.copy(), Sdash, seed=2, jitter=3, jitter_seed=5)
    rng = random.Random(1)
    while cen.num_alive > 1:
        victim = rng.choice(sorted(cen.graph.nodes()))
        cen.delete_and_heal(victim)
        dis.delete(victim)
    assert dis.graph() == cen.graph


def test_quiescence_still_bounded_under_jitter():
    g = preferential_attachment(30, 2, seed=17)
    dis = DistributedNetwork(g.copy(), Dash, seed=4, jitter=3, jitter_seed=2)
    rng = random.Random(0)
    for _ in range(15):
        victim = rng.choice(sorted(p for p in dis.processes))
        rounds = dis.delete(victim)
        assert rounds < 200


def test_negative_jitter_rejected():
    from repro.distributed.engine import SyncEngine
    from repro.errors import ProtocolError

    with pytest.raises(ProtocolError):
        SyncEngine(jitter=-1)
