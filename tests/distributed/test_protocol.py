"""Integration tests: the distributed protocol vs. the centralized simulator.

The strongest correctness statement in this repository: for every
component-safe deterministic healer, the message-passing implementation
must produce *identical* topology, healing edges, component labels, δ
values, per-node ID-change counts, and Lemma-8 ID-message counts as the
centralized simulator, for the same seeds and deletion sequence.
"""

from __future__ import annotations

import random

import pytest

from repro.core.dash import Dash
from repro.core.naive import BinaryTreeHeal, LineHeal, StarHeal
from repro.core.network import SelfHealingNetwork
from repro.core.sdash import Sdash
from repro.distributed import DistributedNetwork, MsgKind
from repro.errors import NodeNotFoundError
from repro.graph.generators import (
    erdos_renyi,
    preferential_attachment,
    random_tree,
    star_graph,
)


def run_lockstep(graph, healer_cls, *, id_seed, kill_seed, steps=None):
    cen = SelfHealingNetwork(graph.copy(), healer_cls(), seed=id_seed)
    dis = DistributedNetwork(graph.copy(), healer_cls, seed=id_seed)
    rng = random.Random(kill_seed)
    n = 0
    while cen.num_alive > 1 and (steps is None or n < steps):
        victim = rng.choice(sorted(cen.graph.nodes()))
        cen.delete_and_heal(victim)
        dis.delete(victim)
        n += 1
        yield cen, dis


class TestEquivalence:
    @pytest.mark.parametrize(
        "healer_cls",
        [Dash, Sdash, BinaryTreeHeal, LineHeal, StarHeal],
        ids=lambda c: c.name,
    )
    def test_topology_labels_deltas_match(self, healer_cls):
        g = preferential_attachment(30, 2, seed=17)
        for cen, dis in run_lockstep(g, healer_cls, id_seed=5, kill_seed=2):
            assert dis.graph() == cen.graph
            assert dis.healing_graph() == cen.healing_graph
            labels = dis.labels()
            deltas = dis.deltas()
            for u in cen.graph.nodes():
                assert labels[u] == cen.tracker.label_of(u)
                assert deltas[u] == cen.delta(u)

    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: erdos_renyi(25, 0.2, seed=3),
            lambda: random_tree(25, seed=3),
            lambda: star_graph(20),
        ],
        ids=["er", "tree", "star"],
    )
    def test_equivalence_across_topologies(self, graph_factory):
        g = graph_factory()
        for cen, dis in run_lockstep(g, Dash, id_seed=1, kill_seed=9):
            assert dis.graph() == cen.graph

    def test_id_message_counts_match_lemma8_accounting(self):
        g = preferential_attachment(30, 2, seed=4)
        cen = SelfHealingNetwork(g.copy(), Dash(), seed=8)
        dis = DistributedNetwork(g.copy(), Dash, seed=8)
        rng = random.Random(6)
        for _ in range(20):
            victim = rng.choice(sorted(cen.graph.nodes()))
            cen.delete_and_heal(victim)
            dis.delete(victim)
        for u, proc in dis.processes.items():
            assert proc.id_changes == cen.tracker.id_changes[u]
            assert dis.id_messages_sent(u) == cen.tracker.messages_sent[u]
            assert (
                dis.engine.messages_received(u, MsgKind.ID_UPDATE)
                == cen.tracker.messages_received[u]
            )


class TestProtocolMechanics:
    def test_latency_constant_rounds_for_local_heal(self):
        """A heal with no ID propagation beyond the RT quiesces in O(1)
        rounds plus the NoN refresh (bounded by a small constant here)."""
        g = star_graph(6)
        dis = DistributedNetwork(g, Dash, seed=0)
        rounds = dis.delete(0)
        assert rounds <= 6

    def test_deleting_dead_node_raises(self):
        g = star_graph(4)
        dis = DistributedNetwork(g, Dash, seed=0)
        dis.delete(1)
        with pytest.raises(NodeNotFoundError):
            dis.delete(1)

    def test_num_alive_tracks(self):
        g = preferential_attachment(10, 2, seed=0)
        dis = DistributedNetwork(g, Dash, seed=0)
        dis.delete(3)
        dis.delete(5)
        assert dis.num_alive == 8

    def test_non_overhead_positive(self):
        g = preferential_attachment(15, 2, seed=1)
        dis = DistributedNetwork(g, Dash, seed=1)
        dis.delete(3)
        assert dis.non_overhead_messages() > 0

    def test_delete_many(self):
        g = preferential_attachment(12, 2, seed=2)
        dis = DistributedNetwork(g, Dash, seed=2)
        rounds = dis.delete_many([0, 1, 2])
        assert len(rounds) == 3
        assert dis.num_alive == 9


class TestFullKillDistributed:
    def test_protocol_survives_total_destruction(self):
        from repro.graph.traversal import is_connected

        g = preferential_attachment(25, 2, seed=10)
        dis = DistributedNetwork(g.copy(), Dash, seed=10)
        rng = random.Random(0)
        alive = sorted(g.nodes())
        while len(alive) > 1:
            victim = rng.choice(alive)
            dis.delete(victim)
            alive.remove(victim)
            assert is_connected(dis.graph())
