"""Tests for the synchronous message-passing engine."""

from __future__ import annotations

import pytest

from repro.distributed.engine import SyncEngine
from repro.distributed.messages import Message, MsgKind
from repro.errors import ProtocolError


class Recorder:
    """Minimal process: records messages, optionally echoes once."""

    def __init__(self, engine, name, echo_to=None):
        self.engine = engine
        self.name = name
        self.echo_to = echo_to
        self.inbox: list[Message] = []

    def handle(self, message: Message) -> None:
        self.inbox.append(message)
        if self.echo_to is not None:
            target, self.echo_to = self.echo_to, None
            self.engine.send(
                Message(MsgKind.STATE, src=self.name, dst=target, payload=None)
            )


def msg(src, dst, kind=MsgKind.STATE):
    return Message(kind=kind, src=src, dst=dst, payload=None)


class TestDelivery:
    def test_round_delivery(self):
        eng = SyncEngine()
        a = Recorder(eng, "a")
        eng.register("a", a)
        eng.send(msg("b", "a"))
        assert a.inbox == []  # not yet delivered
        eng.step()
        assert len(a.inbox) == 1

    def test_messages_to_dead_nodes_dropped(self):
        eng = SyncEngine()
        eng.send(msg("a", "ghost"))
        delivered = eng.step()
        assert delivered == 0
        assert eng.total_sent() == 1  # still counted as sent

    def test_unregister(self):
        eng = SyncEngine()
        a = Recorder(eng, "a")
        eng.register("a", a)
        eng.unregister("a")
        eng.send(msg("b", "a"))
        assert eng.step() == 0

    def test_double_register_rejected(self):
        eng = SyncEngine()
        a = Recorder(eng, "a")
        eng.register("a", a)
        with pytest.raises(ProtocolError):
            eng.register("a", a)


class TestQuiescence:
    def test_cascade_takes_multiple_rounds(self):
        eng = SyncEngine()
        a = Recorder(eng, "a", echo_to="b")
        b = Recorder(eng, "b", echo_to="a")
        eng.register("a", a)
        eng.register("b", b)
        eng.post(msg("x", "a"))
        rounds = eng.run_until_quiescent()
        assert rounds == 3  # x→a, a→b, b→a
        assert len(a.inbox) == 2
        assert len(b.inbox) == 1

    def test_max_rounds_guard(self):
        class Chatterbox:
            def __init__(self, engine):
                self.engine = engine

            def handle(self, message):
                self.engine.send(msg("a", "a"))

        eng = SyncEngine()
        eng.register("a", Chatterbox(eng))
        eng.post(msg("x", "a"))
        with pytest.raises(ProtocolError, match="quiesce"):
            eng.run_until_quiescent(max_rounds=10)

    def test_already_quiescent(self):
        eng = SyncEngine()
        assert eng.run_until_quiescent() == 0


class TestAccounting:
    def test_per_node_and_kind_counters(self):
        eng = SyncEngine()
        a = Recorder(eng, "a")
        eng.register("a", a)
        eng.send(msg("b", "a", MsgKind.STATE))
        eng.send(msg("b", "a", MsgKind.ID_UPDATE))
        eng.step()
        assert eng.messages_sent("b") == 2
        assert eng.messages_sent("b", MsgKind.STATE) == 1
        assert eng.messages_received("a", MsgKind.ID_UPDATE) == 1
        assert eng.total_sent(MsgKind.STATE) == 1
        assert eng.total_sent() == 2

    def test_unknown_node_counts_zero(self):
        eng = SyncEngine()
        assert eng.messages_sent("nope") == 0
        assert eng.messages_received("nope") == 0
