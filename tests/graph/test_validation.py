"""Tests for structural graph validation."""

from __future__ import annotations

import pytest

from repro.errors import InvariantViolation
from repro.graph.generators import preferential_attachment
from repro.graph.graph import Graph
from repro.graph.validation import validate_graph


class TestValidateGraph:
    def test_healthy_graph_passes(self):
        validate_graph(preferential_attachment(40, 2, seed=0))

    def test_empty_passes(self):
        validate_graph(Graph())

    def test_detects_asymmetry(self):
        g = Graph.from_edges([(1, 2)])
        g._adj[1].discard(2)  # corrupt on purpose
        with pytest.raises(InvariantViolation, match="asymmetric|odd"):
            validate_graph(g)

    def test_detects_self_loop(self):
        g = Graph([1])
        g._adj[1].add(1)
        with pytest.raises(InvariantViolation, match="self-loop"):
            validate_graph(g)

    def test_detects_dangling_endpoint(self):
        g = Graph([1])
        g._adj[1].add(99)
        with pytest.raises(InvariantViolation, match="dangling"):
            validate_graph(g)

    def test_detects_bad_edge_count(self):
        g = Graph.from_edges([(1, 2)])
        g._num_edges = 5
        with pytest.raises(InvariantViolation, match="edge count"):
            validate_graph(g)
