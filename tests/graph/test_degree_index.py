"""Unit tests for the push-only lazy bucket index and Graph's use of it."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.graph.degree_index import DegreeIndex
from repro.graph.generators import (
    cycle_graph,
    erdos_renyi,
    preferential_attachment,
    star_graph,
)
from repro.graph.graph import Graph


class TestDegreeIndexCore:
    def make(self, keys: dict) -> DegreeIndex:
        idx = DegreeIndex(keys.get)
        for node, key in keys.items():
            idx.push(node, key)
        return idx

    def test_extremes_and_tie_breaks(self):
        keys = {3: 1, 1: 2, 2: 2, 0: 0}
        idx = self.make(keys)
        assert idx.max_key() == 2
        assert idx.min_key() == 0
        assert idx.top_node() == 1  # smallest label of the tied max pair
        assert idx.bottom_node() == 0

    def test_stale_entries_self_invalidate(self):
        keys = {0: 5, 1: 3}
        idx = self.make(keys)
        assert idx.top_node() == 0
        keys[0] = 1  # node 0 drops; old entry at 5 is now stale
        idx.push(0, 1)
        assert idx.max_key() == 3
        assert idx.top_node() == 1
        del keys[1]  # node 1 vanishes entirely
        assert idx.top_node() == 0
        assert idx.max_key() == 1

    def test_empty_defaults(self):
        keys: dict = {}
        idx = DegreeIndex(keys.get)
        assert idx.max_key() == 0
        assert idx.min_key(default=-7) == -7
        assert idx.top_node() is None
        assert idx.bottom_node() is None

    def test_emptied_index_returns_defaults(self):
        keys = {0: 2, 1: 4}
        idx = self.make(keys)
        assert idx.max_key() == 4
        keys.clear()
        assert idx.top_node() is None
        assert idx.max_key(default=99) == 99

    def test_negative_keys(self):
        keys = {0: -3, 1: -1, 2: -3}
        idx = self.make(keys)
        assert idx.min_key() == -3
        assert idx.max_key() == -1
        assert idx.bottom_node() == 0

    def test_duplicate_pushes_are_harmless(self):
        keys = {0: 2, 1: 2}
        idx = self.make(keys)
        for _ in range(5):
            idx.push(0, 2)  # node oscillated back to the same key
        assert idx.top_node() == 0
        del keys[0]
        assert idx.top_node() == 1

    def test_bucket_snapshot_filters_stale(self):
        keys = {0: 2, 1: 2, 2: 3}
        idx = self.make(keys)
        assert idx.bucket(2) == {0, 1}
        keys[1] = 3
        idx.push(1, 3)
        assert idx.bucket(2) == {0}
        assert idx.bucket(3) == {1, 2}
        assert idx.bucket(17) == frozenset()

    def test_min_label_per_bucket(self):
        keys = {5: 1, 3: 1, 9: 1, 4: 2}
        idx = self.make(keys)
        assert idx.min_label(1) == 3
        assert idx.min_label(2) == 4
        assert idx.min_label(99) is None

    def test_check_passes_and_fails(self):
        keys = {0: 1, 1: 2}
        idx = self.make(keys)
        idx.check({0: 1, 1: 2})
        with pytest.raises(SimulationError):
            idx.check({0: 1, 1: 2, 9: 0})  # node the index never saw
        # A node whose key moved without a push: scans disagree.
        keys[0] = 7
        with pytest.raises(SimulationError):
            idx.check({0: 7, 1: 2})

    def test_cursor_settles_through_large_gaps(self):
        keys = {0: 1000, 1: 1}
        idx = self.make(keys)
        assert idx.max_key() == 1000
        del keys[0]
        assert idx.max_key() == 1
        keys[2] = 500
        idx.push(2, 500)
        assert idx.max_key() == 500


class TestGraphDegreeIndex:
    def test_max_min_degree_track_mutations(self):
        g = star_graph(6)  # hub 0 with 5 leaves
        assert g.max_degree() == 5
        assert g.min_degree() == 1
        assert g.max_degree_node() == 0
        assert g.min_degree_node() == 1  # smallest-label leaf
        g.remove_node(0)
        assert g.max_degree() == 0
        assert g.min_degree() == 0
        assert g.max_degree_node() == 1
        g.add_edge(3, 4)
        assert g.max_degree() == 1
        assert g.max_degree_node() == 3
        g.remove_edge(3, 4)
        assert g.max_degree() == 0

    def test_empty_graph(self):
        g = Graph()
        assert g.max_degree() == 0
        assert g.min_degree() == 0
        assert g.max_degree_node() is None
        assert g.min_degree_node() is None

    def test_degree_bucket(self):
        g = cycle_graph(4)
        assert g.degree_bucket(2) == {0, 1, 2, 3}
        assert g.degree_bucket(1) == frozenset()

    def test_matches_scan_through_random_churn(self):
        import random

        rng = random.Random(0)
        g = erdos_renyi(40, 0.15, seed=2)
        for _ in range(300):
            op = rng.random()
            nodes = sorted(g.nodes())
            if op < 0.3 and len(nodes) > 2:
                g.remove_node(rng.choice(nodes))
            elif op < 0.7:
                u, v = rng.sample(range(60), 2)
                g.add_edge(u, v)
            else:
                edges = sorted(g.edges())
                if edges:
                    g.remove_edge(*rng.choice(edges))
            g.check_degree_index()
            degrees = g.degrees()
            if degrees:
                assert g.max_degree() == max(degrees.values())
                assert g.min_degree() == min(degrees.values())

    def test_copy_and_subgraph_reindex(self):
        g = preferential_attachment(30, 2, seed=1)
        c = g.copy()
        c.check_degree_index()
        assert c.max_degree() == g.max_degree()
        c.remove_node(c.max_degree_node())
        c.check_degree_index()
        s = g.subgraph(range(15))
        s.check_degree_index()
        degs = s.degrees()
        assert s.max_degree() == max(degs.values())

    def test_index_is_lazy_until_first_query(self):
        g = Graph()
        for u, v in [(0, 1), (0, 2), (0, 3), (2, 3)]:
            g.add_edge(u, v)
        assert g._deg_index is None  # mutations alone never build it
        assert g.max_degree() == 3  # first query builds…
        assert g._deg_index is not None
        g.add_edge(1, 3)  # …and mutations maintain it from then on
        assert g.min_degree_node() == 1
        assert g.degree_bucket(2) == {1, 2}
        g.check_degree_index()
        assert g.copy()._deg_index is None  # copies start lazy again
        assert g.subgraph([0, 1])._deg_index is None

    def test_lazy_build_matches_incremental(self):
        # Same churn, one graph queried from the start (incremental
        # maintenance) vs one queried only at the end (fresh build).
        a = preferential_attachment(25, 2, seed=8)
        b = a.copy()
        a.max_degree()  # force early build on a; b stays lazy
        for g in (a, b):
            g.remove_node(3)
            g.add_edge(5, 9)
            if g.has_edge(0, 1):
                g.remove_edge(0, 1)
        assert b._deg_index is None
        assert a.max_degree() == b.max_degree()
        assert a.max_degree_node() == b.max_degree_node()
        assert a.min_degree_node() == b.min_degree_node()

    def test_listener_sees_every_degree_change(self):
        changes = []
        g = Graph()
        g.degree_listener = lambda node, old, new: changes.append(
            (node, old, new)
        )
        g.add_edge(0, 1)
        assert (0, None, 0) in changes and (1, None, 0) in changes
        assert (0, 0, 1) in changes and (1, 0, 1) in changes
        changes.clear()
        g.add_edge(0, 2)
        g.remove_node(0)
        assert (0, 2, None) in changes
        assert (1, 1, 0) in changes and (2, 1, 0) in changes
