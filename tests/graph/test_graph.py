"""Tests for the adjacency-set Graph substrate."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import (
    EdgeNotFoundError,
    NodeNotFoundError,
    SelfLoopError,
)
from repro.graph.graph import Graph


class TestNodes:
    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node(1)
        g.add_node(1)
        assert g.num_nodes == 1

    def test_constructor_nodes(self):
        g = Graph([1, 2, 3])
        assert sorted(g.nodes()) == [1, 2, 3]

    def test_remove_node_removes_incident_edges(self):
        g = Graph.from_edges([(1, 2), (2, 3), (1, 3)])
        g.remove_node(2)
        assert g.num_edges == 1
        assert g.has_edge(1, 3)
        assert not g.has_node(2)

    def test_remove_missing_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            Graph().remove_node(99)

    def test_contains_and_len(self):
        g = Graph([1, 2])
        assert 1 in g
        assert 3 not in g
        assert len(g) == 2

    def test_iter(self):
        g = Graph([3, 1, 2])
        assert list(iter(g)) == [3, 1, 2]  # insertion order


class TestEdges:
    def test_add_edge_returns_true_when_new(self):
        g = Graph()
        assert g.add_edge(1, 2) is True
        assert g.add_edge(1, 2) is False
        assert g.add_edge(2, 1) is False
        assert g.num_edges == 1

    def test_add_edge_creates_endpoints(self):
        g = Graph()
        g.add_edge("a", "b")
        assert g.has_node("a") and g.has_node("b")

    def test_self_loop_rejected(self):
        with pytest.raises(SelfLoopError):
            Graph().add_edge(1, 1)

    def test_remove_edge(self):
        g = Graph.from_edges([(1, 2)])
        g.remove_edge(2, 1)  # direction-agnostic
        assert g.num_edges == 0
        assert g.has_node(1) and g.has_node(2)

    def test_remove_missing_edge_raises(self):
        g = Graph([1, 2])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 2)

    def test_remove_edge_missing_endpoint_raises(self):
        g = Graph([1])
        with pytest.raises(NodeNotFoundError):
            g.remove_edge(1, 99)

    def test_edges_each_once(self):
        edges = [(1, 2), (2, 3), (3, 1)]
        g = Graph.from_edges(edges)
        seen = {frozenset(e) for e in g.edges()}
        assert seen == {frozenset(e) for e in edges}
        assert len(list(g.edges())) == 3


class TestNeighborhood:
    def test_neighbors_snapshot_isolated_from_mutation(self):
        g = Graph.from_edges([(1, 2), (1, 3)])
        nbrs = g.neighbors(1)
        g.remove_edge(1, 2)
        assert nbrs == frozenset({2, 3})  # snapshot unchanged
        assert g.neighbors(1) == frozenset({3})

    def test_neighbors_missing_raises(self):
        with pytest.raises(NodeNotFoundError):
            Graph().neighbors(0)

    def test_degree(self):
        g = Graph.from_edges([(1, 2), (1, 3)])
        assert g.degree(1) == 2
        assert g.degree(2) == 1

    def test_degrees_and_max(self):
        g = Graph.from_edges([(1, 2), (1, 3)])
        assert g.degrees() == {1: 2, 2: 1, 3: 1}
        assert g.max_degree() == 2
        assert Graph().max_degree() == 0


class TestCopySubgraphEq:
    def test_copy_independent(self):
        g = Graph.from_edges([(1, 2)])
        h = g.copy()
        h.add_edge(2, 3)
        assert not g.has_node(3)
        assert g != h

    def test_eq_structural(self):
        a = Graph.from_edges([(1, 2), (2, 3)])
        b = Graph.from_edges([(2, 3), (1, 2)])
        assert a == b

    def test_eq_non_graph(self):
        assert Graph() != 42

    def test_subgraph(self):
        g = Graph.from_edges([(1, 2), (2, 3), (3, 4)])
        s = g.subgraph([2, 3, 99])
        assert sorted(s.nodes()) == [2, 3]
        assert s.has_edge(2, 3)
        assert s.num_edges == 1


@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=40,
    )
)
def test_property_edge_count_consistency(edges):
    """num_edges always equals the number of distinct undirected pairs."""
    g = Graph.from_edges(edges)
    distinct = {frozenset(e) for e in edges}
    assert g.num_edges == len(distinct)
    # Symmetry holds everywhere.
    for u in g.nodes():
        for v in g.neighbors_view(u):
            assert u in g.neighbors_view(v)


@given(
    st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=30,
    ),
    st.integers(0, 12),
)
def test_property_remove_node_then_no_references(edges, victim):
    g = Graph.from_edges(edges)
    g.add_node(victim)
    g.remove_node(victim)
    for u in g.nodes():
        assert victim not in g.neighbors_view(u)
