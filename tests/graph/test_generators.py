"""Tests for graph generators."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.graph.forest import is_tree
from repro.graph.generators import (
    GENERATORS,
    complete_graph,
    complete_kary_tree,
    cycle_graph,
    erdos_renyi,
    gnm_random,
    grid_graph,
    kary_children,
    kary_level,
    kary_parent,
    kary_tree_size,
    path_graph,
    preferential_attachment,
    random_tree,
    star_graph,
    watts_strogatz,
)
from repro.graph.traversal import is_connected


class TestPreferentialAttachment:
    def test_node_count(self):
        assert preferential_attachment(50, 2, seed=0).num_nodes == 50

    def test_edge_count(self):
        # m seed edges + m per arriving node
        g = preferential_attachment(50, 3, seed=0)
        assert g.num_edges == 3 + 3 * (50 - 4)

    def test_connected(self):
        assert is_connected(preferential_attachment(100, 1, seed=5))
        assert is_connected(preferential_attachment(100, 3, seed=5))

    def test_deterministic(self):
        a = preferential_attachment(40, 2, seed=9)
        b = preferential_attachment(40, 2, seed=9)
        assert a == b

    def test_seed_sensitivity(self):
        a = preferential_attachment(40, 2, seed=1)
        b = preferential_attachment(40, 2, seed=2)
        assert a != b

    def test_hub_heavy_degree_distribution(self):
        g = preferential_attachment(300, 2, seed=3)
        degrees = sorted(g.degrees().values(), reverse=True)
        # Scale-free-ish: the top hub should far exceed the median.
        assert degrees[0] >= 4 * degrees[len(degrees) // 2]

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            preferential_attachment(3, 0)
        with pytest.raises(ConfigurationError):
            preferential_attachment(2, 2)

    @given(st.integers(5, 60), st.integers(1, 3), st.integers(0, 50))
    def test_property_simple_and_connected(self, n, m, seed):
        if n < m + 1:
            n = m + 1
        g = preferential_attachment(n, m, seed=seed)
        assert g.num_nodes == n
        assert is_connected(g)
        for u in g.nodes():
            assert u not in g.neighbors_view(u)


class TestErdosRenyi:
    def test_extremes(self):
        assert erdos_renyi(10, 0.0, seed=0).num_edges == 0
        assert erdos_renyi(10, 1.0, seed=0).num_edges == 45

    def test_determinism(self):
        assert erdos_renyi(30, 0.2, seed=4) == erdos_renyi(30, 0.2, seed=4)

    def test_edge_density_plausible(self):
        g = erdos_renyi(200, 0.05, seed=7)
        expected = 0.05 * 199 * 200 / 2
        assert 0.5 * expected < g.num_edges < 1.5 * expected

    def test_invalid_p(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi(10, 1.5)


class TestGnm:
    def test_exact_edges(self):
        assert gnm_random(20, 30, seed=0).num_edges == 30

    def test_too_many_edges_rejected(self):
        with pytest.raises(ConfigurationError):
            gnm_random(4, 7)


class TestRandomTree:
    @given(st.integers(1, 80), st.integers(0, 30))
    def test_property_is_tree(self, n, seed):
        g = random_tree(n, seed=seed)
        assert g.num_nodes == n
        assert is_tree(g)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            random_tree(0)


class TestKaryTree:
    def test_size_formula(self):
        assert kary_tree_size(3, 0) == 1
        assert kary_tree_size(3, 1) == 4
        assert kary_tree_size(3, 2) == 13
        assert kary_tree_size(1, 4) == 5

    def test_parent_child_consistency(self):
        n = kary_tree_size(3, 3)
        for node in range(1, n):
            p = kary_parent(node, 3)
            assert node in kary_children(p, 3, n)

    def test_levels(self):
        assert kary_level(0, 3) == 0
        assert kary_level(1, 3) == 1
        assert kary_level(3, 3) == 1
        assert kary_level(4, 3) == 2
        assert kary_level(12, 3) == 2

    def test_tree_structure(self):
        g = complete_kary_tree(3, 2)
        assert g.num_nodes == 13
        assert is_tree(g)
        assert g.degree(0) == 3  # root
        assert g.degree(12) == 1  # a leaf

    @given(st.integers(2, 5), st.integers(0, 4))
    def test_property_kary_is_tree(self, b, d):
        g = complete_kary_tree(b, d)
        assert is_tree(g)
        assert g.num_nodes == kary_tree_size(b, d)


class TestFixedTopologies:
    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.num_edges == 5
        assert all(g.degree(u) == 2 for u in g.nodes())
        with pytest.raises(ConfigurationError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 5
        assert g.num_edges == 5

    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 10

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4
        with pytest.raises(ConfigurationError):
            grid_graph(0, 3)

    def test_watts_strogatz(self):
        g = watts_strogatz(30, 4, 0.2, seed=1)
        assert g.num_nodes == 30
        assert g.num_edges == 30 * 2  # rewiring preserves edge count
        with pytest.raises(ConfigurationError):
            watts_strogatz(10, 3, 0.1)
        with pytest.raises(ConfigurationError):
            watts_strogatz(10, 4, 2.0)


class TestRegistry:
    def test_all_registered_callables(self):
        for name, fn in GENERATORS.items():
            assert callable(fn), name

    def test_expected_keys(self):
        assert "preferential_attachment" in GENERATORS
        assert "complete_kary_tree" in GENERATORS
