"""Tests for the shared CSR builder (``repro.graph.csr``).

``graph_to_csr`` grew out of ``graph/distance.py`` and now serves both
the analytics and the array backend's bulk export; these are its first
direct unit tests. The bulk slot-array path must be indistinguishable
from the generic per-node walk.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NodeNotFoundError
from repro.graph.array_backend import ArrayGraph
from repro.graph.csr import graph_to_csr
from repro.graph.distance import graph_to_csr as reexported
from repro.graph.graph import Graph


def dense(mat):
    return np.asarray(mat.todense())


class TestGeneric:
    def test_empty_graph(self):
        mat, order = graph_to_csr(Graph())
        assert mat.shape == (0, 0)
        assert order == []

    def test_isolated_nodes(self):
        g = Graph([3, 1, 2])
        mat, order = graph_to_csr(g)
        assert mat.nnz == 0
        assert mat.shape == (3, 3)
        assert order == [3, 1, 2]

    def test_adjacency_contents(self):
        g = Graph.from_edges([("a", "b"), ("b", "c")])
        mat, order = graph_to_csr(g)
        idx = {u: i for i, u in enumerate(order)}
        d = dense(mat)
        assert d[idx["a"], idx["b"]] == 1 == d[idx["b"], idx["a"]]
        assert d[idx["a"], idx["c"]] == 0
        assert mat.nnz == 4  # both directions of both edges

    def test_node_order_stability(self):
        g = Graph.from_edges([(2, 0), (0, 1)])
        default_order = graph_to_csr(g)[1]
        assert default_order == list(g.nodes())
        explicit = [1, 2, 0]
        mat, order = graph_to_csr(g, explicit)
        assert order == explicit
        assert order is not explicit  # defensive copy
        assert dense(mat)[0, 2] == 1  # (1, 0) edge under explicit order

    def test_order_subset_drops_outside_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        mat, order = graph_to_csr(g, [0, 1])
        assert order == [0, 1]
        assert mat.nnz == 2

    def test_duplicate_order_rejected(self):
        g = Graph([0, 1])
        with pytest.raises(ValueError):
            graph_to_csr(g, [0, 0])

    def test_unknown_order_node_rejected(self):
        with pytest.raises(NodeNotFoundError):
            graph_to_csr(Graph([0]), [0, 9])

    def test_distance_reexport_is_same_function(self):
        assert reexported is graph_to_csr


class TestArrayBulkPath:
    def test_bulk_equals_generic(self):
        edges = [(0, 1), (0, 2), (2, 3), (1, 3), (3, 4)]
        a = ArrayGraph.from_edges(edges, nodes=range(6))
        g = Graph.from_edges(edges, nodes=range(6))
        am, aorder = graph_to_csr(a)
        gm, gorder = graph_to_csr(g)
        assert aorder == gorder == list(range(6))
        assert (dense(am) == dense(gm)).all()

    def test_empty_array_graph(self):
        mat, order = graph_to_csr(ArrayGraph())
        assert mat.shape == (0, 0) and order == []

    def test_holed_store_falls_back_to_generic(self):
        a = ArrayGraph.from_edges([(0, 1), (1, 2)])
        a.remove_node(1)
        mat, order = graph_to_csr(a)
        assert order == [0, 2]
        assert mat.shape == (2, 2)
        assert mat.nnz == 0

    def test_explicit_order_falls_back_to_generic(self):
        a = ArrayGraph.from_edges([(0, 1)])
        mat, order = graph_to_csr(a, [1, 0])
        assert order == [1, 0]
        assert dense(mat)[0, 1] == 1
