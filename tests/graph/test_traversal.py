"""Tests for BFS traversal, components, connectivity."""

from __future__ import annotations

import pytest

from repro.errors import NodeNotFoundError
from repro.graph.generators import cycle_graph, path_graph
from repro.graph.graph import Graph
from repro.graph.traversal import (
    bfs_distances,
    bfs_order,
    bfs_parents,
    connected_component,
    connected_components,
    induced_components,
    is_connected,
    same_component,
)


@pytest.fixture
def two_triangles():
    """Two disjoint triangles: {0,1,2} and {3,4,5}."""
    return Graph.from_edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])


class TestBfsDistances:
    def test_path_distances(self):
        g = path_graph(5)
        assert bfs_distances(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_cycle_distances(self):
        g = cycle_graph(6)
        d = bfs_distances(g, 0)
        assert d[3] == 3
        assert d[5] == 1

    def test_unreachable_omitted(self, two_triangles):
        d = bfs_distances(two_triangles, 0)
        assert set(d) == {0, 1, 2}

    def test_missing_source_raises(self):
        with pytest.raises(NodeNotFoundError):
            bfs_distances(Graph(), 0)

    def test_bfs_order_starts_at_source(self):
        g = path_graph(4)
        assert bfs_order(g, 2)[0] == 2

    def test_bfs_parents_root_none(self):
        g = path_graph(3)
        p = bfs_parents(g, 0)
        assert p[0] is None
        assert p[1] == 0
        assert p[2] == 1


class TestComponents:
    def test_connected_component(self, two_triangles):
        assert connected_component(two_triangles, 4) == {3, 4, 5}

    def test_connected_components(self, two_triangles):
        comps = connected_components(two_triangles)
        assert sorted(map(sorted, comps)) == [[0, 1, 2], [3, 4, 5]]

    def test_empty_graph(self):
        assert connected_components(Graph()) == []

    def test_isolated_nodes(self):
        g = Graph([1, 2])
        assert len(connected_components(g)) == 2


class TestIsConnected:
    def test_empty_and_single(self):
        assert is_connected(Graph())
        assert is_connected(Graph([1]))

    def test_path_connected(self):
        assert is_connected(path_graph(10))

    def test_disjoint_not_connected(self, two_triangles):
        assert not is_connected(two_triangles)


class TestSameComponent:
    def test_same(self, two_triangles):
        assert same_component(two_triangles, 0, 2)

    def test_different(self, two_triangles):
        assert not same_component(two_triangles, 0, 5)

    def test_self(self, two_triangles):
        assert same_component(two_triangles, 0, 0)

    def test_missing_raises(self, two_triangles):
        with pytest.raises(NodeNotFoundError):
            same_component(two_triangles, 0, 99)


class TestInducedComponents:
    def test_restriction_splits(self):
        g = path_graph(5)
        # Removing middle node 2 from the induced set splits the path.
        comps = induced_components(g, [0, 1, 3, 4])
        assert sorted(map(sorted, comps)) == [[0, 1], [3, 4]]

    def test_ignores_unknown(self):
        g = path_graph(3)
        comps = induced_components(g, [0, 99])
        assert sorted(map(sorted, comps)) == [[0]]
