"""Tests for forest/tree predicates."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.graph.forest import (
    count_trees,
    forest_excess_edges,
    is_forest,
    is_tree,
)
from repro.graph.generators import (
    complete_kary_tree,
    cycle_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.graph.graph import Graph


class TestIsForest:
    def test_empty(self):
        assert is_forest(Graph())

    def test_single_node(self):
        assert is_forest(Graph([1]))

    def test_path(self):
        assert is_forest(path_graph(5))

    def test_two_disjoint_paths(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        assert is_forest(g)

    def test_cycle_not_forest(self):
        assert not is_forest(cycle_graph(3))

    def test_cycle_in_one_component(self):
        g = Graph.from_edges([(0, 1), (2, 3), (3, 4), (4, 2)])
        assert not is_forest(g)

    @given(st.integers(1, 60), st.integers(0, 100))
    def test_property_random_tree_is_forest(self, n, seed):
        assert is_forest(random_tree(n, seed=seed))

    @given(st.integers(3, 40))
    def test_property_tree_plus_edge_has_cycle(self, n):
        g = path_graph(n)
        g.add_edge(0, n - 1)
        assert not is_forest(g)


class TestIsTree:
    def test_empty_not_tree(self):
        assert not is_tree(Graph())

    def test_single_node_is_tree(self):
        assert is_tree(Graph([1]))

    def test_star(self):
        assert is_tree(star_graph(7))

    def test_kary(self):
        assert is_tree(complete_kary_tree(3, 3))

    def test_forest_of_two_not_tree(self):
        assert not is_tree(Graph.from_edges([(0, 1), (2, 3)]))

    def test_cycle_not_tree(self):
        assert not is_tree(cycle_graph(4))


class TestCounts:
    def test_count_trees(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        g.add_node(9)
        assert count_trees(g) == 3

    def test_excess_edges_zero_for_forest(self):
        assert forest_excess_edges(path_graph(5)) == 0

    def test_excess_edges_counts_cycles(self):
        assert forest_excess_edges(cycle_graph(5)) == 1
        g = cycle_graph(4)
        g.add_edge(0, 2)
        assert forest_excess_edges(g) == 2
