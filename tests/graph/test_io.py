"""Tests for edge-list I/O."""

from __future__ import annotations

import pytest

from repro.graph.generators import preferential_attachment
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list, write_edge_list


class TestRoundTrip:
    def test_simple(self, tmp_path):
        g = preferential_attachment(30, 2, seed=1)
        p = write_edge_list(g, tmp_path / "g.edges")
        h = read_edge_list(p)
        assert g == h

    def test_isolated_nodes_preserved(self, tmp_path):
        g = Graph([5, 7])
        g.add_edge(1, 2)
        h = read_edge_list(write_edge_list(g, tmp_path / "iso.edges"))
        assert sorted(h.nodes()) == [1, 2, 5, 7]
        assert h.num_edges == 1

    def test_empty_graph(self, tmp_path):
        h = read_edge_list(write_edge_list(Graph(), tmp_path / "e.edges"))
        assert h.num_nodes == 0


class TestParsing:
    def test_comments_ignored(self, tmp_path):
        p = tmp_path / "c.edges"
        p.write_text("# header\n1 2  # trailing\n\n3\n")
        g = read_edge_list(p)
        assert g.has_edge(1, 2)
        assert g.has_node(3)

    def test_malformed_raises(self, tmp_path):
        p = tmp_path / "bad.edges"
        p.write_text("1 2 3\n")
        with pytest.raises(ValueError, match="expected 1 or 2 fields"):
            read_edge_list(p)
