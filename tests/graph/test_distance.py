"""Tests for distance computation — pure-Python vs scipy cross-validation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.distance import (
    UNREACHABLE,
    all_pairs_distances,
    average_path_length,
    diameter,
    distance_matrix,
    eccentricity,
    graph_to_csr,
)
from repro.graph.generators import (
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    preferential_attachment,
)
from repro.graph.graph import Graph


class TestDistanceMatrix:
    def test_matches_pure_python_on_path(self):
        g = path_graph(6)
        mat, order = distance_matrix(g)
        pure = all_pairs_distances(g)
        for i, u in enumerate(order):
            for j, v in enumerate(order):
                assert mat[i, j] == pure[u].get(v, UNREACHABLE)

    def test_unreachable_marked(self):
        g = Graph([0, 1])
        mat, order = distance_matrix(g)
        i, j = order.index(0), order.index(1)
        assert mat[i, j] == UNREACHABLE

    def test_empty_graph(self):
        mat, order = distance_matrix(Graph())
        assert mat.shape == (0, 0)
        assert order == []

    def test_explicit_order_respected(self):
        g = path_graph(4)
        mat, order = distance_matrix(g, order=[3, 2, 1, 0])
        assert order == [3, 2, 1, 0]
        assert mat[0, 3] == 3  # d(3, 0)

    def test_duplicate_order_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            graph_to_csr(g, order=[0, 0, 1])

    @given(st.integers(0, 1000))
    def test_property_scipy_equals_bfs(self, seed):
        g = erdos_renyi(18, 0.15, seed=seed)
        mat, order = distance_matrix(g)
        pure = all_pairs_distances(g)
        for i, u in enumerate(order):
            row = pure[u]
            for j, v in enumerate(order):
                assert mat[i, j] == row.get(v, UNREACHABLE)


class TestEccentricityDiameter:
    def test_path(self):
        g = path_graph(5)
        assert eccentricity(g, 0) == 4
        assert eccentricity(g, 2) == 2
        assert diameter(g) == 4

    def test_cycle(self):
        assert diameter(cycle_graph(8)) == 4

    def test_grid(self):
        assert diameter(grid_graph(3, 4)) == 2 + 3

    def test_disconnected_diameter_per_component(self):
        g = Graph.from_edges([(0, 1), (2, 3), (3, 4)])
        assert diameter(g) == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            diameter(Graph())


class TestAveragePathLength:
    def test_path3(self):
        # path 0-1-2: pairs (0,1)=1 (1,2)=1 (0,2)=2 → mean 4/3 both directions
        assert average_path_length(path_graph(3)) == pytest.approx(4 / 3)

    def test_no_pairs(self):
        assert average_path_length(Graph([1])) == 0.0
        assert average_path_length(Graph([1, 2])) == 0.0

    def test_ba_graph_reasonable(self):
        g = preferential_attachment(50, 2, seed=0)
        apl = average_path_length(g)
        assert 1.0 < apl < 10.0


class TestGraphToCsr:
    def test_symmetric(self):
        g = preferential_attachment(20, 2, seed=1)
        mat, order = graph_to_csr(g)
        dense = mat.toarray()
        assert (dense == dense.T).all()
        assert dense.sum() == 2 * g.num_edges

    def test_subset_order_drops_external_edges(self):
        g = path_graph(4)
        mat, _ = graph_to_csr(g, order=[0, 1])
        assert mat.toarray().sum() == 2  # only edge (0,1) retained
