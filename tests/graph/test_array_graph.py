"""Tests for the slotted int-ID array graph backend.

The contract under test is "exact ``Graph`` interface, different
storage": every operation, return type, exception, and mutation-stream
side effect must match the object backend byte-for-byte. The mirrored
random-op test drives both backends through the same operation sequence
and compares after every step.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    ConfigurationError,
    EdgeNotFoundError,
    NodeNotFoundError,
    SelfLoopError,
)
from repro.graph.array_backend import BACKENDS, ArrayGraph, new_graph
from repro.graph.graph import Graph


def both(nodes=()):
    return Graph(nodes), ArrayGraph(nodes)


def assert_same(g: Graph, a: ArrayGraph):
    assert a == g and g == a
    assert a.num_nodes == g.num_nodes
    assert a.num_edges == g.num_edges
    assert sorted(a.nodes()) == sorted(g.nodes())
    assert sorted(map(tuple, map(sorted, a.edges()))) == sorted(
        map(tuple, map(sorted, g.edges()))
    )
    assert a.degrees() == g.degrees()
    assert len(a) == len(g)


class TestConstruction:
    def test_range_bulk_path(self):
        a = ArrayGraph(range(5))
        assert sorted(a.nodes()) == [0, 1, 2, 3, 4]
        assert a.num_nodes == 5 and a.num_edges == 0

    def test_generator_input(self):
        a = ArrayGraph(u for u in (0, 1, 2))
        assert a.num_nodes == 3

    def test_non_consecutive_labels(self):
        a = ArrayGraph([4, 0, 2])
        assert sorted(a.nodes()) == [0, 2, 4]
        assert not a.has_node(1)
        assert not a.has_node(3)

    def test_duplicate_labels(self):
        assert ArrayGraph([0, 0, 1]).num_nodes == 2

    def test_rejects_non_int_labels(self):
        for bad in ("a", 1.5, None, (0, 1)):
            with pytest.raises(ConfigurationError):
                ArrayGraph([bad])

    def test_rejects_negative_labels(self):
        with pytest.raises(ConfigurationError):
            ArrayGraph([-1])

    def test_float_labels_rejected_even_when_integral(self):
        # 0.0 == 0 must not smuggle a float through the bulk detector.
        with pytest.raises(ConfigurationError):
            ArrayGraph([0.0, 1.0])

    def test_from_edges(self):
        a = ArrayGraph.from_edges([(0, 1), (1, 2)], nodes=[5])
        g = Graph.from_edges([(0, 1), (1, 2)], nodes=[5])
        assert_same(g, a)

    def test_copy_independent(self):
        a = ArrayGraph.from_edges([(0, 1)])
        b = a.copy()
        b.add_edge(1, 2)
        assert not a.has_node(2)
        assert a.num_edges == 1 and b.num_edges == 2

    def test_subgraph(self):
        a = ArrayGraph.from_edges([(0, 1), (1, 2), (2, 3), (0, 3)])
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (0, 3)])
        assert_same(g.subgraph([0, 1, 3, 9]), a.subgraph([0, 1, 3, 9]))


class TestNodes:
    def test_slot_reuse_after_removal(self):
        a = ArrayGraph(range(3))
        a.remove_node(1)
        assert not a.has_node(1)
        a.add_node(1)
        assert a.has_node(1)
        assert a.degree(1) == 0
        assert a.num_nodes == 3

    def test_remove_returns_neighbor_set(self):
        a = ArrayGraph.from_edges([(0, 1), (1, 2)])
        assert a.remove_node(1) == {0, 2}
        assert a.num_edges == 0

    def test_remove_missing_raises(self):
        with pytest.raises(NodeNotFoundError):
            ArrayGraph().remove_node(0)
        with pytest.raises(NodeNotFoundError):
            ArrayGraph(range(2)).remove_node("x")

    def test_contains_iter_len(self):
        a = ArrayGraph(range(3))
        assert 2 in a and 3 not in a and "x" not in a
        assert list(iter(a)) == [0, 1, 2]
        assert len(a) == 3


class TestEdges:
    def test_add_edge_semantics(self):
        g, a = both()
        for t in (g, a):
            assert t.add_edge(0, 1) is True
            assert t.add_edge(1, 0) is False
        assert_same(g, a)

    def test_self_loop_raises(self):
        with pytest.raises(SelfLoopError):
            ArrayGraph().add_edge(1, 1)

    def test_remove_edge_errors(self):
        a = ArrayGraph.from_edges([(0, 1)])
        a.add_node(2)
        with pytest.raises(NodeNotFoundError):
            a.remove_edge(9, 0)
        with pytest.raises(NodeNotFoundError):
            a.remove_edge(0, 9)
        with pytest.raises(EdgeNotFoundError):
            a.remove_edge(0, 2)

    def test_neighbors_types(self):
        a = ArrayGraph.from_edges([(0, 1), (0, 2)])
        assert a.neighbors(0) == frozenset({1, 2})
        assert isinstance(a.neighbors(0), frozenset)
        view = a.neighbors_view(0)
        assert isinstance(view, set)
        a.add_edge(0, 3)
        assert 3 in view  # live view, like the object backend
        with pytest.raises(NodeNotFoundError):
            a.neighbors(9)


class TestDegreeMachinery:
    def test_degree_queries_match(self):
        edges = [(0, 1), (0, 2), (0, 3), (2, 3)]
        g = Graph.from_edges(edges)
        a = ArrayGraph.from_edges(edges)
        assert a.degree(0) == g.degree(0) == 3
        assert a.degree_of(9) is None is g.degree_of(9)
        assert a.degrees_of([2, 3], offset=1) == g.degrees_of([2, 3], offset=1)
        with pytest.raises(NodeNotFoundError):
            a.degrees_of([2, 9])

    def test_degree_index_parity(self):
        edges = [(0, 1), (0, 2), (0, 3), (2, 3), (3, 4)]
        g = Graph.from_edges(edges)
        a = ArrayGraph.from_edges(edges)
        for t in (g, a):
            assert t.max_degree_node() == 0
            t.remove_node(0)
            assert t.max_degree_node() == 3
            t.check_degree_index()
        assert a.min_degree_node() == g.min_degree_node()

    def test_degree_listener_stream_identical(self):
        streams = {}
        for name, t in zip(("object", "array"), both(range(4))):
            calls = []
            t.degree_listener = lambda *args, calls=calls: calls.append(args)
            t.add_edge(0, 1)
            t.add_edge(1, 2)
            t.remove_edge(0, 1)
            t.remove_node(2)
            t.add_node(2)
            streams[name] = calls
        assert streams["object"] == streams["array"]

    def test_degree_array(self):
        a = ArrayGraph.from_edges([(0, 1), (0, 2)])
        a.add_node(4)
        a.remove_node(1)
        degs = a.degree_array().tolist()
        # Gap growth doubles capacity, so slots past the highest label
        # are preallocated slack — dead, and reported with the same -1
        # sentinel as genuinely removed nodes.
        assert degs[:5] == [1, -1, 1, -1, 0]
        assert all(d == -1 for d in degs[5:])

    def test_degree_array_sentinel_across_grown_gaps(self):
        """Amortized-doubling gap growth must keep the -1 dead-slot
        sentinel exact: dead gap slots, slack slots, and removed nodes
        all read -1; only genuinely live slots carry degrees."""
        a = ArrayGraph(range(2))
        a.add_edge(0, 1)
        a.add_node(9)            # gap 2..8, plus doubling slack past 9
        a.add_node(5)            # claims a slot inside the first gap
        a.add_edge(5, 9)
        a.add_node(40)           # a second, larger gap
        a.remove_node(5)         # a real removal (takes edge (5,9) along)
        degs = a.degree_array().tolist()
        assert len(degs) == len(a._nbrs) >= 41
        expected_live = {0: 1, 1: 1, 9: 0, 40: 0}
        for slot, d in enumerate(degs):
            assert d == expected_live.get(slot, -1)
        assert sorted(a.nodes()) == sorted(expected_live)
        assert a.num_nodes == 4
        a.check_degree_index()


_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            ["add_node", "remove_node", "add_edge", "remove_edge"]
        ),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
    ),
    max_size=40,
)


class TestMirroredOps:
    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS)
    def test_random_op_sequences_match(self, ops):
        g, a = both(range(3))
        for op, u, v in ops:
            results = []
            for t in (g, a):
                try:
                    if op == "add_node":
                        results.append(("ok", t.add_node(u)))
                    elif op == "remove_node":
                        results.append(("ok", t.remove_node(u)))
                    elif op == "add_edge":
                        results.append(("ok", t.add_edge(u, v)))
                    else:
                        results.append(("ok", t.remove_edge(u, v)))
                except Exception as exc:  # noqa: BLE001 - compared below
                    results.append((type(exc).__name__, None))
            assert results[0] == results[1]
            assert_same(g, a)


class TestFactory:
    def test_new_graph_selects_backend(self):
        assert type(new_graph(range(3))) is Graph
        assert type(new_graph(range(3), backend="object")) is Graph
        assert type(new_graph(range(3), backend="array")) is ArrayGraph

    def test_new_graph_unknown_backend(self):
        with pytest.raises(ConfigurationError) as exc:
            new_graph(range(3), backend="numpy")
        assert "array" in str(exc.value) and "object" in str(exc.value)

    def test_backend_attributes(self):
        assert Graph.backend == "object"
        assert ArrayGraph.backend == "array"
        assert set(BACKENDS) == {"object", "array"}
