"""Tests for the generic component registry and spec-string parsing.

Covers :mod:`repro.registry` itself plus the five registry instances —
healers, adversaries, generators, wave schedules, metrics — including a
round-trip of *every* registered name through spec-string construction
and the fail-fast error paths.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.adversary import ADVERSARIES
from repro.adversary.base import Adversary
from repro.adversary.waves import (
    WAVE_SCHEDULES,
    WaveAdversary,
    make_wave_schedule,
)
from repro.core.base import Healer
from repro.core.registry import HEALERS
from repro.errors import ConfigurationError
from repro.graph.generators import GENERATORS
from repro.graph.graph import Graph
from repro.registry import Registry, component_registries, parse_spec
from repro.sim.metrics import METRICS, Metric


class TestParseSpec:
    def test_bare_name(self):
        assert parse_spec("dash") == ("dash", (), {})

    def test_kwargs(self):
        name, args, kwargs = parse_spec(
            "random-wave:size=8,schedule=geometric"
        )
        assert name == "random-wave"
        assert args == ()
        assert kwargs == {"size": 8, "schedule": "geometric"}

    def test_positional(self):
        assert parse_spec("constant:8") == ("constant", (8,), {})

    def test_mixed_positional_then_keyword(self):
        name, args, kwargs = parse_spec("geometric:2,ratio=3.0")
        assert (name, args, kwargs) == ("geometric", (2,), {"ratio": 3.0})

    def test_literal_coercion(self):
        _, _, kwargs = parse_spec(
            "x:i=8,f=0.5,t=(1, 2),b=true,b2=False,n=none,s=hello"
        )
        assert kwargs == {
            "i": 8,
            "f": 0.5,
            "t": (1, 2),
            "b": True,
            "b2": False,
            "n": None,
            "s": "hello",
        }

    def test_nested_spec_value_stays_string(self):
        _, _, kwargs = parse_spec("random-wave:schedule=geometric:initial=4")
        assert kwargs == {"schedule": "geometric:initial=4"}

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            ":x=1",
            "name:",
            "name:,",
            "name:x=1,,y=2",
            "name:1 2=3",
            "name:x=1,x=2",
            "name:x=1,2",
        ],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ConfigurationError):
            parse_spec(bad)

    def test_non_string_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_spec(42)  # type: ignore[arg-type]


class TestRegistryCore:
    def test_mapping_protocol(self):
        reg = Registry("widget", {"a": int, "b": float})
        assert "a" in reg
        assert sorted(reg) == ["a", "b"]
        assert len(reg) == 2
        assert reg["a"] is int
        assert reg.names() == ["a", "b"]

    def test_register_decorator_and_duplicate(self):
        reg = Registry("widget")

        @reg.register("one")
        def make_one():
            return 1

        assert reg.make("one") == 1
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.register("one", make_one)

    def test_unknown_name_lists_available(self):
        with pytest.raises(ConfigurationError, match="available"):
            HEALERS.make("nope")

    def test_seed_injected_only_where_accepted(self):
        # dash takes no seed; random does — same call pattern for both.
        assert not HEALERS.accepts("dash", "seed")
        assert ADVERSARIES.accepts("random", "seed")
        HEALERS.make("dash", seed=7)  # silently skipped
        a1 = ADVERSARIES.make("random", seed=7)
        a2 = ADVERSARIES.make("random", seed=7)
        assert a1._seed == a2._seed == 7

    def test_spec_seed_beats_injected_seed(self):
        adv = ADVERSARIES.make("random:seed=3", seed=7)
        assert adv._seed == 3

    def test_force_and_defaults_respect_acceptance(self):
        g = GENERATORS.make(
            "preferential_attachment",
            force={"n": 10, "rows": 99},
            defaults={"m": 2, "p": 0.5},
        )
        assert g.num_nodes == 10

    def test_defaults_do_not_override_spec(self):
        g = GENERATORS.make(
            "erdos_renyi:p=1.0", force={"n": 5}, defaults={"p": 0.0}
        )
        # p=1.0 from the spec wins: the complete graph on 5 nodes.
        assert g.num_edges == 10

    def test_validate_spec_rejects_unknown_kwarg(self):
        with pytest.raises(ConfigurationError, match="invalid healer spec"):
            HEALERS.validate_spec("dash:bogus=1")

    def test_validate_spec_rejects_missing_required_argument(self):
        with pytest.raises(ConfigurationError, match="missing required"):
            ADVERSARIES.validate_spec("scripted")
        with pytest.raises(ConfigurationError, match="missing required"):
            ADVERSARIES.validate_spec("level-attack")
        with pytest.raises(ConfigurationError, match="missing required"):
            GENERATORS.validate_spec("grid")
        with pytest.raises(ConfigurationError, match="missing required"):
            METRICS.validate_spec("stretch")
        ADVERSARIES.validate_spec("scripted:(0, 1)")
        ADVERSARIES.validate_spec("level-attack:3")
        GENERATORS.validate_spec("grid:3,4")

    def test_force_conflicts_with_spec_pinned_param(self):
        # A spec must not pin a runtime-owned (forced) parameter —
        # keyword or positional — instead of silently winning/losing.
        with pytest.raises(ConfigurationError, match="supplied by the runtime"):
            GENERATORS.make("erdos_renyi:n=50,p=0.2", force={"n": 10})
        with pytest.raises(ConfigurationError, match="supplied by the runtime"):
            GENERATORS.make("erdos_renyi:50,0.2", force={"n": 10})

    def test_validate_spec_reserved_params(self):
        with pytest.raises(ConfigurationError, match="supplied by the runtime"):
            GENERATORS.validate_spec("erdos_renyi:n=50,p=0.2", reserved=("n",))
        GENERATORS.validate_spec("erdos_renyi:p=0.2", reserved=("n",))

    def test_empty_value_rejected(self):
        from repro.registry import parse_spec as ps

        with pytest.raises(ConfigurationError, match="empty value"):
            ps("degree-bounded:max_increase=")

    def test_validate_spec_ignores_runtime_injected_params(self):
        # `seed` and (for generators) `n` arrive at make() time.
        ADVERSARIES.validate_spec("random")
        GENERATORS.validate_spec("preferential_attachment")
        GENERATORS.validate_spec("erdos_renyi:p=0.1")

    def test_validate_spec_rejects_bad_override(self):
        with pytest.raises(ConfigurationError, match="invalid adversary spec"):
            ADVERSARIES.validate_spec("random", overrides={"bogus": 1})

    def test_make_wraps_constructor_type_errors(self):
        with pytest.raises(ConfigurationError, match="cannot build"):
            ADVERSARIES.make("scripted")  # missing required script


#: minimal constructor arguments for components whose factories require
#: them (everything else round-trips bare)
#: a tiny committed churn schedule (the trace-churn factory reads its
#: file at construction, so the round-trip needs a real path)
_CHURN_SCHEDULE = Path(__file__).parent / "data" / "churn_schedule.jsonl"

_REQUIRED = {
    "adversary": {
        "level-attack": "level-attack:3",
        "scripted": "scripted:(0, 1)",
        "trace-churn": f"trace-churn:path={_CHURN_SCHEDULE}",
    },
    "generator": {
        "complete_kary_tree": "complete_kary_tree:2,2",
        "grid": "grid:3,3",
        "watts_strogatz": "watts_strogatz:n=10,k=2,p=0.0",
        "path": "path:5",
        "cycle": "cycle:5",
        "star": "star:5",
        "complete": "complete:5",
        "erdos_renyi": "erdos_renyi:n=10,p=0.5",
        "gnm_random": "gnm_random:n=10,m=12",
        "random_tree": "random_tree:10",
        "preferential_attachment": "preferential_attachment:10",
        "pa": "pa:n=10,backend=array",
    },
    "metric": {"capacity": "capacity:headroom=2"},
}


class TestEveryRegisteredComponentRoundTrips:
    def test_every_healer(self):
        for name in HEALERS.names():
            healer = HEALERS.make(name, seed=1)
            assert isinstance(healer, Healer)
            assert healer.name == name

    def test_every_adversary(self):
        for name in ADVERSARIES.names():
            spec = _REQUIRED["adversary"].get(name, name)
            adversary = ADVERSARIES.make(spec, seed=1)
            assert isinstance(adversary, Adversary)
            assert adversary.name == name
            assert isinstance(adversary.batch_rounds, bool)

    def test_every_generator(self):
        for name in GENERATORS.names():
            spec = _REQUIRED["generator"].get(name, name)
            # n is runtime-owned in sweeps; here the specs pin their own
            # sizes, so no force is applied.
            graph = GENERATORS.make(spec, seed=1)
            assert isinstance(graph, Graph)
            assert graph.num_nodes >= 2

    def test_every_wave_schedule(self):
        for name in WAVE_SCHEDULES.names():
            spec = {"fraction": "fraction:0.5"}.get(name, f"{name}:4")
            schedule = make_wave_schedule(spec)
            size = schedule(0, 100)
            assert 1 <= size <= 100
            # the normalized description round-trips through the parser
            assert parse_spec(schedule.spec_string)[0] == name

    def test_every_metric(self):
        from repro.graph.generators import path_graph

        for name in METRICS.names():
            if name == "stretch":
                metric = METRICS.make(
                    "stretch", overrides={"original": path_graph(4)}
                )
            else:
                metric = METRICS.make(_REQUIRED["metric"].get(name, name))
            assert isinstance(metric, Metric)

    def test_component_registries_complete(self):
        regs = component_registries()
        assert set(regs) == {
            "healer",
            "adversary",
            "generator",
            "wave-schedule",
            "metric",
        }
        for reg in regs.values():
            assert isinstance(reg, Registry)
            assert len(reg) > 0


class TestWaveScheduleSpecs:
    def test_string_specs(self):
        assert make_wave_schedule("constant:8")(0, 100) == 8
        assert make_wave_schedule(
            "geometric:initial=2,ratio=3.0"
        )(2, 999) == 18
        assert make_wave_schedule("fraction:0.1")(0, 50) == 5

    def test_size_fills_open_size_param(self):
        assert make_wave_schedule("constant", size=5)(0, 100) == 5
        assert make_wave_schedule("geometric", size=4)(0, 100) == 4
        assert make_wave_schedule(None, size=3)(0, 100) == 3

    def test_size_ignored_where_inapplicable(self):
        # fraction has no fixed wave size; explicit specs win over size.
        assert make_wave_schedule("fraction:0.5", size=9)(0, 10) == 5
        assert make_wave_schedule("constant:2", size=9)(0, 10) == 2

    def test_default_is_constant_eight(self):
        assert make_wave_schedule(None)(0, 100) == 8

    def test_unknown_schedule_name(self):
        with pytest.raises(ConfigurationError, match="available"):
            make_wave_schedule("bogus:1")

    def test_wave_adversary_spec_end_to_end(self):
        adv = ADVERSARIES.make("random-wave:size=8,schedule=geometric", seed=1)
        assert isinstance(adv, WaveAdversary)
        assert adv.schedule(0, 10_000) == 8
        assert adv.schedule(1, 10_000) == 16
        assert adv.schedule_spec == "geometric:initial=8,ratio=2.0"
