"""Subprocess driver for the genuine-SIGKILL recovery tests.

Run as a child process (never imported by pytest workers directly):

``python _crash_driver.py straight <healer> <adversary> <n> <seed>``
    Run the campaign uninterrupted, print the canonical result JSON.
``python _crash_driver.py run <healer> <adversary> <n> <seed> <state>``
    Run with checkpointing + ledger under ``<state>``. If
    ``REPRO_CRASH_AT_ROUND`` is set and the state dir's crash latch is
    unset, SIGKILL *this process* after that round completes — a real
    kill: no exception handlers, no atexit, no flushing beyond what the
    recorder already fsync'd. Prints result JSON if it survives.
``python _crash_driver.py resume <state>``
    Resume from the ledger, print the canonical result JSON.

The canonical JSON includes a SHA-256 over the checkpoint-codec
serialization of the full HealEvent stream, so the parent test compares
whole campaigns across process boundaries with one string equality.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

from repro.recovery import resume_from_ledger
from repro.recovery.checkpoint import _encode_event
from repro.recovery.faults import crash_once, kill_self
from repro.registry import component_registries

REGISTRIES = component_registries()


class _KillAfterRound:
    """SIGKILL the process inside round ``crash_round + 1`` (rounds are
    counted by distinct event steps, same discipline as CrashAtRound).

    Killing one round *after* the target means round ``crash_round``'s
    ledger record and any due checkpoint are already fsync'd — the crash
    lands mid-round, the hardest spot to recover from.
    """

    checkpoint_exempt = True
    checkpointable = False

    def __init__(self, crash_round: int, state_dir: str) -> None:
        self.crash_round = crash_round
        self.state_dir = state_dir
        self._seen_steps: set[int] = set()

    def on_event(self, network, event) -> None:
        self._seen_steps.add(event.step)
        if len(self._seen_steps) > self.crash_round:
            if crash_once(self.state_dir, f"round{self.crash_round}"):
                kill_self()

    def finalize(self, network) -> dict:
        return {}


def _components(healer_spec: str, adversary_spec: str, n: int, seed: int):
    # Backend rides an env var so "straight" and "run" agree; "resume"
    # deliberately takes none — the checkpoint's static payload must
    # carry the backend across the process boundary on its own.
    backend = os.environ.get("REPRO_BACKEND", "object")
    graph = REGISTRIES["generator"].make(
        f"erdos_renyi:n={n},p=0.08,seed={seed},backend={backend}"
    )
    healer = REGISTRIES["healer"].make(healer_spec)
    adversary = REGISTRIES["adversary"].make(adversary_spec, seed=seed + 1)
    metrics = [
        REGISTRIES["metric"].make("messages"),
        REGISTRIES["metric"].make("components"),
    ]
    return graph, healer, adversary, metrics


def _emit(result) -> None:
    events = result.events or []
    digest = hashlib.sha256(
        json.dumps(
            [_encode_event(e) for e in events], separators=(",", ":")
        ).encode()
    ).hexdigest()
    print(
        json.dumps(
            {
                "initial_n": result.initial_n,
                "deletions": result.deletions,
                "insertions": result.insertions,
                "final_alive": result.final_alive,
                "peak_delta": result.peak_delta,
                "values": result.values,
                "events_sha256": digest,
                "num_events": len(events),
            },
            sort_keys=True,
        )
    )


def main(argv: list[str]) -> int:
    from repro.sim.engine import run_campaign

    mode = argv[0]
    if mode == "resume":
        (state_dir,) = argv[1:]
        _emit(resume_from_ledger(os.path.join(state_dir, "campaign.jsonl")))
        return 0

    healer_spec, adversary_spec, n, seed = (
        argv[1], argv[2], int(argv[3]), int(argv[4])
    )
    graph, healer, adversary, metrics = _components(
        healer_spec, adversary_spec, n, seed
    )
    if mode == "straight":
        result = run_campaign(
            graph, healer, adversary, id_seed=seed, metrics=metrics,
            keep_events=True,
        )
        _emit(result)
        return 0

    assert mode == "run", mode
    state_dir = argv[5]
    crash_at = os.environ.get("REPRO_CRASH_AT_ROUND")
    if crash_at is not None:
        metrics = metrics + [_KillAfterRound(int(crash_at), state_dir)]
    result = run_campaign(
        graph, healer, adversary, id_seed=seed, metrics=metrics,
        keep_events=True,
        checkpoint_every=int(os.environ.get("REPRO_CHECKPOINT_EVERY", "2")),
        checkpoint_dir=os.path.join(state_dir, "checkpoints"),
        ledger=os.path.join(state_dir, "campaign.jsonl"),
    )
    _emit(result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
