"""Tests for the append-only campaign ledger."""

from __future__ import annotations

import json

import pytest

from repro.errors import CheckpointError
from repro.recovery import CampaignLedger, latest_campaign, read_ledger


class TestAppendAndRead:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with CampaignLedger(path) as ledger:
            ledger.append({"type": "campaign", "n": 10})
            ledger.append({"type": "round", "round": 1, "victims": [3]})
            ledger.append({"type": "end", "values": {"waves": 1.0}})
        records = read_ledger(path)
        assert [r["type"] for r in records] == ["campaign", "round", "end"]
        assert records[1]["victims"] == [3]

    def test_append_mode_extends_existing_file(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with CampaignLedger(path) as ledger:
            ledger.append({"type": "campaign"})
        with CampaignLedger(path) as ledger:
            ledger.append({"type": "round", "round": 1})
        assert len(read_ledger(path)) == 2

    def test_record_without_type_rejected(self, tmp_path):
        with CampaignLedger(tmp_path / "l.jsonl") as ledger:
            with pytest.raises(CheckpointError, match="'type'"):
                ledger.append({"round": 1})

    def test_append_after_close_raises(self, tmp_path):
        ledger = CampaignLedger(tmp_path / "l.jsonl")
        ledger.close()
        with pytest.raises(CheckpointError, match="closed"):
            ledger.append({"type": "round"})

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "l.jsonl"
        with CampaignLedger(path) as ledger:
            ledger.append({"type": "campaign"})
        assert read_ledger(path)[0]["type"] == "campaign"


class TestCrashTolerance:
    def test_torn_final_line_dropped(self, tmp_path):
        path = tmp_path / "l.jsonl"
        with CampaignLedger(path) as ledger:
            ledger.append({"type": "campaign"})
            ledger.append({"type": "round", "round": 1})
        # Simulate a crash mid-append: a partial record with no newline.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "rou')
        records = read_ledger(path)
        assert [r["type"] for r in records] == ["campaign", "round"]

    def test_torn_tail_raises_in_strict_mode(self, tmp_path):
        path = tmp_path / "l.jsonl"
        with CampaignLedger(path) as ledger:
            ledger.append({"type": "campaign"})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"truncat')
        with pytest.raises(CheckpointError, match="corrupt ledger"):
            read_ledger(path, strict=True)

    def test_mid_file_corruption_always_raises(self, tmp_path):
        path = tmp_path / "l.jsonl"
        path.write_text(
            '{"type": "campaign"}\ngarbage not json\n{"type": "end"}\n'
        )
        with pytest.raises(CheckpointError, match="line 2"):
            read_ledger(path)

    def test_non_object_record_rejected(self, tmp_path):
        path = tmp_path / "l.jsonl"
        path.write_text('{"type": "campaign"}\n[1, 2, 3]\n')
        with pytest.raises(CheckpointError, match="expected an object"):
            read_ledger(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_ledger(tmp_path / "absent.jsonl")


class TestLatestCampaign:
    def test_selects_newest_header(self, tmp_path):
        records = [
            {"type": "campaign", "run": 1},
            {"type": "round", "round": 1},
            {"type": "campaign", "run": 2},
            {"type": "round", "round": 1},
            {"type": "round", "round": 2},
        ]
        header, tail = latest_campaign(records)
        assert header["run"] == 2
        assert [r["round"] for r in tail] == [1, 2]

    def test_no_header_raises(self):
        with pytest.raises(CheckpointError, match="no campaign header"):
            latest_campaign([{"type": "round"}])

    def test_records_are_canonical_json_lines(self, tmp_path):
        path = tmp_path / "l.jsonl"
        with CampaignLedger(path) as ledger:
            ledger.append({"type": "round", "b": 1, "a": 2})
        line = path.read_text().strip()
        # sort_keys + compact separators: stable, diffable, greppable
        assert line == json.dumps(
            {"a": 2, "b": 1, "type": "round"},
            separators=(",", ":"),
            sort_keys=True,
        )
