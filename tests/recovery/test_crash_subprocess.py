"""Genuine-SIGKILL recovery tests: a campaign killed by the OS resumes
from its ledger + last intact checkpoint to a byte-identical result.

Unlike the in-process ``SimulatedCrash`` tests, nothing here unwinds
politely — the child process dies by ``SIGKILL`` mid-round, exactly like
an OOM kill or a machine reboot, and the only state that survives is
what the recorder had already fsync'd.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

DRIVER = Path(__file__).parent / "_crash_driver.py"
SRC = Path(__file__).resolve().parents[2] / "src"


def _run_driver(args, *, env_extra=None, expect_kill=False):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env.update(env_extra or {})
    proc = subprocess.run(
        [sys.executable, str(DRIVER), *map(str, args)],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    if expect_kill:
        assert proc.returncode == -signal.SIGKILL, (
            f"expected SIGKILL, got rc={proc.returncode}; "
            f"stderr: {proc.stderr[-2000:]}"
        )
        return None
    assert proc.returncode == 0, f"driver failed: {proc.stderr[-2000:]}"
    return json.loads(proc.stdout.strip().splitlines()[-1])


# ≥3 healers × all three round schedules (single-victim, wave, and
# mixed churn) × both graph backends, per the crash-safety acceptance
# bar. The churn × array row doubles as the backend-preservation proof:
# "resume" gets no backend hint, only what the checkpoint recorded.
MATRIX = [
    ("dash", "max-node", "object"),
    ("dash", "random-wave", "object"),
    ("dash", "churn:rate=0.5,mean=10", "object"),
    ("dash", "churn:rate=1.5,mean=8", "array"),
    ("dash-random-order", "random", "object"),
    ("dash-random-order", "targeted-wave", "object"),
    ("graph-heal-delta", "max-node", "object"),
    ("graph-heal-delta", "random-wave", "object"),
    ("forgiving-tree", "churn", "object"),
    ("forgiving-graph", "churn:rate=1.5,lifetime=pareto,mean=6", "object"),
]


@pytest.mark.parametrize("healer,adversary,backend", MATRIX)
def test_sigkilled_campaign_resumes_byte_identical(
    tmp_path, healer, adversary, backend
):
    n, seed = 50, 13
    straight = _run_driver(
        ["straight", healer, adversary, n, seed],
        env_extra={"REPRO_BACKEND": backend},
    )

    state = tmp_path / "state"
    state.mkdir()
    _run_driver(
        ["run", healer, adversary, n, seed, state],
        env_extra={
            "REPRO_CRASH_AT_ROUND": "4",
            "REPRO_CHECKPOINT_EVERY": "3",
            "REPRO_CRASH_OK": "1",
            "REPRO_BACKEND": backend,
        },
        expect_kill=True,
    )
    # The kill was real: the ledger must lack an end record.
    ledger_text = (state / "campaign.jsonl").read_text()
    assert '"type":"end"' not in ledger_text

    resumed = _run_driver(["resume", state])
    assert resumed == straight


def test_sigkill_then_sigkill_then_resume(tmp_path):
    """Two consecutive hard kills — the resume itself is crashed —
    still converge to the uninterrupted result."""
    healer, adversary, n, seed = "dash", "max-node", 50, 13
    straight = _run_driver(["straight", healer, adversary, n, seed])

    state = tmp_path / "state"
    state.mkdir()
    kill_env = {
        "REPRO_CRASH_AT_ROUND": "4",
        "REPRO_CHECKPOINT_EVERY": "3",
        "REPRO_CRASH_OK": "1",
    }
    _run_driver(
        ["run", healer, adversary, n, seed, state],
        env_extra=kill_env,
        expect_kill=True,
    )
    # Resume in a child that the OS kills again a few rounds later
    # (fresh latch key via a different round number).
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            (
                "import sys, os\n"
                "from repro.recovery import resume_from_ledger\n"
                "from repro.recovery.faults import crash_once, kill_self\n"
                "class Kill:\n"
                "    checkpoint_exempt = True\n"
                "    checkpointable = False\n"
                "    seen = None\n"
                "    def on_event(self, network, event):\n"
                "        self.seen = (self.seen or set()) | {event.step}\n"
                "        if len(self.seen) > 3 and crash_once(sys.argv[1], 'second'):\n"
                "            kill_self()\n"
                "    def finalize(self, network):\n"
                "        return {}\n"
                "from repro.registry import component_registries\n"
                "regs = component_registries()\n"
                "mets = [regs['metric'].make('messages'),\n"
                "        regs['metric'].make('components'), Kill()]\n"
                "resume_from_ledger(os.path.join(sys.argv[1], 'campaign.jsonl'),\n"
                "                   metrics=mets)\n"
            ),
            str(state),
        ],
        capture_output=True,
        text=True,
        env={**env, "REPRO_CRASH_OK": "1"},
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, (
        f"rc={proc.returncode} stderr={proc.stderr[-2000:]}"
    )

    resumed = _run_driver(["resume", state])
    assert resumed == straight


def test_chaos_seeded_sigkill(tmp_path):
    """CI chaos leg: ``REPRO_CHAOS_SEED`` (one per matrix entry) derives
    the healer/adversary pairing, the crash round, and the checkpoint
    cadence, so every seed explores a different crash/checkpoint
    alignment without hand-picking any. Locally it runs as seed 0."""
    from repro.recovery.faults import chaos_round

    seed = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
    healer, adversary, backend = MATRIX[seed % len(MATRIX)]
    crash_at = chaos_round(seed, low=2, high=12)
    every = chaos_round(seed + 1, low=1, high=4)
    n, id_seed = 50, 13 + seed

    straight = _run_driver(
        ["straight", healer, adversary, n, id_seed],
        env_extra={"REPRO_BACKEND": backend},
    )

    state = tmp_path / f"chaos-seed{seed}"
    state.mkdir()
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env.update(
        {
            "REPRO_CRASH_AT_ROUND": str(crash_at),
            "REPRO_CHECKPOINT_EVERY": str(every),
            "REPRO_CRASH_OK": "1",
            "REPRO_BACKEND": backend,
        }
    )
    proc = subprocess.run(
        [
            sys.executable,
            str(DRIVER),
            *map(str, ["run", healer, adversary, n, id_seed, state]),
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    if proc.returncode == 0:
        # Short campaign (wave schedules can finish in a handful of
        # rounds): it ended before the chaos round fired, so the
        # crash-run result itself must already match.
        completed = json.loads(proc.stdout.strip().splitlines()[-1])
        assert completed == straight
        return
    assert proc.returncode == -signal.SIGKILL, (
        f"chaos seed {seed}: rc={proc.returncode}; "
        f"stderr: {proc.stderr[-2000:]}"
    )
    resumed = _run_driver(["resume", state])
    assert resumed == straight, (
        f"chaos seed {seed}: {healer}/{adversary} killed at round "
        f"{crash_at} (checkpoint_every={every}) did not resume "
        "byte-identical"
    )
