"""Tests for campaign checkpointing and byte-identical resume.

The differential scheme used throughout: run a campaign straight
through, run the *same* campaign with a fault injected mid-flight,
resume it from the ledger, and require the resumed result to match the
uninterrupted one exactly — final metric values, result metadata, and
the full :class:`~repro.core.network.HealEvent` stream.
"""

from __future__ import annotations

import pytest

from repro.errors import CheckpointError, ConfigurationError, SimulatedCrash
from repro.recovery import (
    Checkpointer,
    CrashAtRound,
    read_ledger,
    resume_campaign,
    resume_from_ledger,
)
from repro.recovery.faults import chaos_round, crash_once, truncate_file
from repro.registry import component_registries
from repro.sim.engine import run_campaign

REGISTRIES = component_registries()

HEALERS = ("dash", "dash-random-order", "graph-heal-delta")
ADVERSARIES = ("max-node", "random", "random-wave", "targeted-wave")


def _components(healer_spec: str, adversary_spec: str, n: int, seed: int):
    graph = REGISTRIES["generator"].make(
        f"erdos_renyi:n={n},p=0.08,seed={seed}"
    )
    healer = REGISTRIES["healer"].make(healer_spec)
    adversary = REGISTRIES["adversary"].make(adversary_spec, seed=seed + 1)
    metrics = [
        REGISTRIES["metric"].make("messages"),
        REGISTRIES["metric"].make("components"),
    ]
    return graph, healer, adversary, metrics


def _straight(healer_spec: str, adversary_spec: str, *, n=50, seed=11):
    graph, healer, adversary, metrics = _components(
        healer_spec, adversary_spec, n, seed
    )
    return run_campaign(
        graph, healer, adversary, id_seed=3, metrics=metrics,
        keep_events=True,
    )


def _crash_and_resume(
    healer_spec: str,
    adversary_spec: str,
    tmp_path,
    *,
    n=50,
    seed=11,
    crash_round=3,
    checkpoint_every=2,
):
    graph, healer, adversary, metrics = _components(
        healer_spec, adversary_spec, n, seed
    )
    ledger = tmp_path / "campaign.jsonl"
    with pytest.raises(SimulatedCrash):
        run_campaign(
            graph, healer, adversary, id_seed=3,
            metrics=metrics + [CrashAtRound(crash_round)],
            keep_events=True,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=tmp_path / "checkpoints",
            ledger=ledger,
        )
    return resume_from_ledger(ledger)


def _assert_identical(a, b):
    assert a.values == b.values
    assert (a.initial_n, a.deletions, a.final_alive, a.peak_delta) == (
        b.initial_n, b.deletions, b.final_alive, b.peak_delta
    )
    assert a.events == b.events


class TestByteIdenticalResume:
    @pytest.mark.parametrize("healer", HEALERS)
    @pytest.mark.parametrize("adversary", ADVERSARIES)
    def test_crash_resume_matrix(self, tmp_path, healer, adversary):
        straight = _straight(healer, adversary)
        resumed = _crash_and_resume(healer, adversary, tmp_path)
        _assert_identical(straight, resumed)

    def test_resume_mid_lazy_batch_accounting(self, tmp_path):
        # Wave campaigns on the lazy tracker leave deferred relabelling
        # pending across rounds; the checkpoint must freeze that
        # in-flight state, not resolve it (which would split one batched
        # sweep into two and change the message totals).
        straight = _straight("dash", "random-wave", n=80, seed=23)
        resumed = _crash_and_resume(
            "dash", "random-wave", tmp_path, n=80, seed=23,
            crash_round=4, checkpoint_every=3,
        )
        _assert_identical(straight, resumed)

    def test_crash_between_checkpoints_replays_the_gap(self, tmp_path):
        # checkpoint_every=4, crash at round 7: resume restarts from
        # round 4 and must re-derive rounds 5-7 identically.
        straight = _straight("dash", "max-node")
        resumed = _crash_and_resume(
            "dash", "max-node", tmp_path,
            crash_round=7, checkpoint_every=4,
        )
        _assert_identical(straight, resumed)

    def test_double_crash_double_resume(self, tmp_path):
        graph, healer, adversary, metrics = _components(
            "dash", "random", 50, 11
        )
        ledger = tmp_path / "campaign.jsonl"
        with pytest.raises(SimulatedCrash):
            run_campaign(
                graph, healer, adversary, id_seed=3,
                metrics=metrics + [CrashAtRound(3)],
                keep_events=True, checkpoint_every=2,
                checkpoint_dir=tmp_path / "checkpoints", ledger=ledger,
            )
        # Crash the *resume* too (a fresh injector rides along — exempt
        # metrics are allowed next to the checkpointed ones), then
        # resume a second time.
        rebuilt = [
            REGISTRIES["metric"].make("messages"),
            REGISTRIES["metric"].make("components"),
        ]
        with pytest.raises(SimulatedCrash):
            resume_from_ledger(
                ledger, metrics=rebuilt + [CrashAtRound(3)]
            )
        resumed = resume_from_ledger(ledger)
        _assert_identical(_straight("dash", "random"), resumed)

    def test_ledger_records_complete_audit_trail(self, tmp_path):
        _crash_and_resume("dash", "max-node", tmp_path)
        records = read_ledger(tmp_path / "campaign.jsonl")
        types = [r["type"] for r in records]
        assert types[0] == "campaign"
        assert "resumed" in types
        assert types[-1] == "end"
        rounds = [r["round"] for r in records if r["type"] == "round"]
        # The crash replays the un-checkpointed tail: round numbers dip
        # back to the resume point but every round is accounted for.
        assert sorted(set(rounds)) == list(range(1, max(rounds) + 1))


class TestResumeSafety:
    def test_completed_campaign_refuses_resume(self, tmp_path):
        graph, healer, adversary, metrics = _components(
            "dash", "max-node", 30, 5
        )
        ledger = tmp_path / "campaign.jsonl"
        run_campaign(
            graph, healer, adversary, id_seed=1, metrics=metrics,
            checkpoint_every=4, checkpoint_dir=tmp_path / "ck",
            ledger=ledger,
        )
        with pytest.raises(CheckpointError, match="already completed"):
            resume_from_ledger(ledger)

    def test_truncated_newest_checkpoint_falls_back(self, tmp_path):
        graph, healer, adversary, metrics = _components(
            "dash", "max-node", 50, 11
        )
        ledger = tmp_path / "campaign.jsonl"
        with pytest.raises(SimulatedCrash):
            run_campaign(
                graph, healer, adversary, id_seed=3,
                metrics=metrics + [CrashAtRound(6)],
                keep_events=True, checkpoint_every=2,
                checkpoint_dir=tmp_path / "ck", ledger=ledger,
            )
        checkpoints = Checkpointer(tmp_path / "ck").list_checkpoints()
        assert len(checkpoints) >= 2
        # Tear the newest snapshot: sha256 in the ledger must reject it
        # and resume must fall back to the previous one.
        truncate_file(checkpoints[-1][1])
        resumed = resume_from_ledger(ledger)
        _assert_identical(_straight("dash", "max-node"), resumed)

    def test_all_checkpoints_torn_raises(self, tmp_path):
        graph, healer, adversary, metrics = _components(
            "dash", "max-node", 50, 11
        )
        ledger = tmp_path / "campaign.jsonl"
        with pytest.raises(SimulatedCrash):
            run_campaign(
                graph, healer, adversary, id_seed=3,
                metrics=metrics + [CrashAtRound(6)],
                checkpoint_every=2,
                checkpoint_dir=tmp_path / "ck", ledger=ledger,
            )
        for _, path in Checkpointer(tmp_path / "ck").list_checkpoints():
            truncate_file(path, drop_bytes=10_000_000)
        with pytest.raises(CheckpointError, match="no intact checkpoint"):
            resume_from_ledger(ledger)

    def test_resume_with_explicit_components(self, tmp_path):
        # Components built directly (not via a registry) carry no
        # provenance; resume accepts explicit replacements and feeds
        # them the checkpointed state.
        from repro.adversary.classic import MaxNodeAttack
        from repro.core.dash import Dash
        from repro.graph.generators import erdos_renyi
        from repro.sim.metrics import MessageMetric

        graph = erdos_renyi(40, 0.1, seed=2)
        ledger = tmp_path / "campaign.jsonl"
        with pytest.raises(SimulatedCrash):
            run_campaign(
                graph, Dash(), MaxNodeAttack(), id_seed=1,
                metrics=[MessageMetric(), CrashAtRound(3)],
                keep_events=True, checkpoint_every=2,
                checkpoint_dir=tmp_path / "ck", ledger=ledger,
            )
        with pytest.raises(CheckpointError, match="provenance"):
            resume_from_ledger(ledger)
        resumed = resume_from_ledger(
            ledger,
            healer=Dash(),
            adversary=MaxNodeAttack(),
            metrics=[MessageMetric()],
        )
        straight = run_campaign(
            erdos_renyi(40, 0.1, seed=2), Dash(), MaxNodeAttack(),
            id_seed=1, metrics=[MessageMetric()], keep_events=True,
        )
        _assert_identical(straight, resumed)

    def test_checkpoint_window_is_pruned(self, tmp_path):
        graph, healer, adversary, metrics = _components(
            "dash", "max-node", 40, 5
        )
        run_campaign(
            graph, healer, adversary, id_seed=1, metrics=metrics,
            checkpoint_every=1, checkpoint_dir=tmp_path / "ck",
        )
        # 40 rounds at every=1 is 41 snapshots (fulls at rounds 0, 8,
        # 16, 24, 32, 40; deltas between). The window keeps the 3 newest
        # fulls — plus every delta chained after the oldest kept full,
        # since a delta is unrestorable without its anchor.
        kept = Checkpointer(tmp_path / "ck").list_checkpoints()
        fulls = [
            r for r, p in kept if not p.name.endswith("-delta.json")
        ]
        assert fulls == [24, 32, 40]
        assert min(r for r, _ in kept) == 24
        assert len(kept) == 17  # rounds 24..40 inclusive


class TestCheckpointValidation:
    def test_non_checkpointable_adversary_rejected_up_front(self, tmp_path):
        graph, healer, _, metrics = _components("dash", "max-node", 30, 5)
        adversary = REGISTRIES["adversary"].make("level-attack:branching=2")
        with pytest.raises(CheckpointError, match="not checkpointable"):
            run_campaign(
                graph, healer, adversary, id_seed=1, metrics=metrics,
                checkpoint_every=4, checkpoint_dir=tmp_path / "ck",
            )

    def test_non_checkpointable_metric_rejected_up_front(self, tmp_path):
        from repro.sim.metrics import StretchMetric

        graph, healer, adversary, _ = _components("dash", "max-node", 30, 5)
        stretch = StretchMetric(graph.copy())
        with pytest.raises(CheckpointError, match="not checkpointable"):
            run_campaign(
                graph, healer, adversary, id_seed=1, metrics=[stretch],
                checkpoint_every=4, checkpoint_dir=tmp_path / "ck",
            )

    def test_checkpoint_every_requires_dir(self):
        graph, healer, adversary, metrics = _components(
            "dash", "max-node", 30, 5
        )
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            run_campaign(
                graph, healer, adversary, id_seed=1, metrics=metrics,
                checkpoint_every=4,
            )

    def test_ledger_without_checkpoints_is_allowed(self, tmp_path):
        # Audit-only mode: per-round records, no snapshots.
        graph, healer, adversary, metrics = _components(
            "dash", "max-node", 30, 5
        )
        ledger = tmp_path / "campaign.jsonl"
        run_campaign(
            graph, healer, adversary, id_seed=1, metrics=metrics,
            ledger=ledger,
        )
        records = read_ledger(ledger)
        assert records[0]["checkpoint_dir"] is None
        assert records[-1]["type"] == "end"

    def test_audit_only_crash_cannot_resume(self, tmp_path):
        graph, healer, adversary, metrics = _components(
            "dash", "max-node", 30, 5
        )
        ledger = tmp_path / "campaign.jsonl"
        with pytest.raises(SimulatedCrash):
            run_campaign(
                graph, healer, adversary, id_seed=1,
                metrics=metrics + [CrashAtRound(3)], ledger=ledger,
            )
        with pytest.raises(CheckpointError, match="without checkpointing"):
            resume_from_ledger(ledger)


class TestFaultHelpers:
    def test_crash_once_latches(self, tmp_path):
        assert crash_once(tmp_path, "k") is True
        assert crash_once(tmp_path, "k") is False
        assert crash_once(tmp_path, "other") is True

    def test_chaos_round_deterministic_and_bounded(self):
        assert chaos_round(7) == chaos_round(7)
        rounds = {chaos_round(s, low=2, high=9) for s in range(50)}
        assert rounds <= set(range(2, 10))
        assert len(rounds) > 1

    def test_crash_at_round_counts_rounds_not_events(self):
        # A wave round emits one event per victim component; the
        # injector must count rounds (distinct steps).
        graph, healer, adversary, _ = _components(
            "dash", "random-wave", 60, 3
        )
        with pytest.raises(SimulatedCrash, match="after round 2"):
            run_campaign(
                graph, healer, adversary, id_seed=1,
                metrics=[CrashAtRound(2)],
            )


class TestDeltaChains:
    """Delta checkpoints: tiny victim-replay records chained onto rare
    full/init anchors, replayed through the real healer on restore."""

    def test_checkpoint_kinds_follow_the_chain_cadence(self, tmp_path):
        from repro.recovery.checkpoint import FULL_SNAPSHOT_EVERY

        graph, healer, adversary, metrics = _components(
            "dash", "max-node", 60, 7
        )
        ledger = tmp_path / "campaign.jsonl"
        run_campaign(
            graph, healer, adversary, id_seed=1, metrics=metrics,
            checkpoint_every=1, checkpoint_dir=tmp_path / "ck",
            ledger=ledger,
        )
        kinds = [
            r["kind"]
            for r in read_ledger(ledger)
            if r.get("type") == "checkpoint"
        ]
        assert kinds[0] == "init"
        for i, kind in enumerate(kinds[1:], 1):
            expected = "delta" if i % FULL_SNAPSHOT_EVERY else "full"
            assert kind == expected, f"checkpoint {i}: {kind}"
        # Deltas must actually be cheap: an order of magnitude smaller
        # than the O(n+m) full they hang off.
        files = {
            p.name: p
            for _, p in Checkpointer(tmp_path / "ck").list_checkpoints()
        }
        fulls = [p for p in files.values() if "-delta" not in p.name]
        deltas = [p for p in files.values() if "-delta" in p.name]
        assert fulls and deltas
        assert max(d.stat().st_size for d in deltas) < min(
            f.stat().st_size for f in fulls
        )

    def test_resumed_from_checkpoint_is_a_delta(self, tmp_path):
        # checkpoint_every=2, crash at round 3: the newest checkpoint is
        # round 2 — the first delta on the init anchor — and resume must
        # both pick it and reproduce the uninterrupted run exactly.
        straight = _straight("dash", "max-node")
        resumed = _crash_and_resume(
            "dash", "max-node", tmp_path,
            crash_round=3, checkpoint_every=2,
        )
        _assert_identical(straight, resumed)
        marker = [
            r
            for r in read_ledger(tmp_path / "campaign.jsonl")
            if r.get("type") == "resumed"
        ]
        assert marker and marker[0]["file"].endswith("-delta.json")

    def test_torn_delta_falls_back_along_the_chain(self, tmp_path):
        straight = _straight("dash", "max-node")
        graph, healer, adversary, metrics = _components(
            "dash", "max-node", 50, 11
        )
        ledger = tmp_path / "campaign.jsonl"
        with pytest.raises(SimulatedCrash):
            run_campaign(
                graph, healer, adversary, id_seed=3,
                metrics=metrics + [CrashAtRound(7)], keep_events=True,
                checkpoint_every=1, checkpoint_dir=tmp_path / "ck",
                ledger=ledger,
            )
        truncate_file(tmp_path / "ck" / "ckpt-r00000006-delta.json")
        resumed = resume_from_ledger(ledger)
        _assert_identical(straight, resumed)
        marker = [
            r for r in read_ledger(ledger) if r.get("type") == "resumed"
        ]
        assert marker[0]["file"] == "ckpt-r00000005-delta.json"

    def test_torn_anchor_fails_every_chain(self, tmp_path):
        graph, healer, adversary, metrics = _components(
            "dash", "max-node", 50, 11
        )
        ledger = tmp_path / "campaign.jsonl"
        with pytest.raises(SimulatedCrash):
            run_campaign(
                graph, healer, adversary, id_seed=3,
                metrics=metrics + [CrashAtRound(5)],
                checkpoint_every=2, checkpoint_dir=tmp_path / "ck",
                ledger=ledger,
            )
        # Every checkpoint so far chains back to the round-0 init
        # anchor; tearing it must brick them all, loudly.
        truncate_file(tmp_path / "ck" / "ckpt-r00000000.json")
        with pytest.raises(CheckpointError, match="no intact checkpoint"):
            resume_from_ledger(ledger)

    def test_replay_divergence_tripwire(self, tmp_path):
        import json as json_mod

        from repro.recovery.checkpoint import load_checkpoint

        graph, healer, adversary, metrics = _components(
            "dash", "max-node", 50, 11
        )
        with pytest.raises(SimulatedCrash):
            run_campaign(
                graph, healer, adversary, id_seed=3,
                metrics=metrics + [CrashAtRound(5)],
                checkpoint_every=2, checkpoint_dir=tmp_path / "ck",
                ledger=tmp_path / "campaign.jsonl",
            )
        # Corrupt a delta's recorded survivor count but keep it valid
        # JSON: without the ledger sha to reject it, the replay itself
        # must notice it did not land on the recorded state.
        target = tmp_path / "ck" / "ckpt-r00000004-delta.json"
        payload = json_mod.loads(target.read_text())
        payload["alive"] += 1
        target.write_text(json_mod.dumps(payload))
        with pytest.raises(CheckpointError, match="diverged"):
            load_checkpoint(tmp_path / "ck", checkpoint=target)
