"""Package-surface tests: public API, version, error hierarchy."""

from __future__ import annotations


import repro
from repro import errors


class TestPublicApi:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_paper_citation(self):
        assert "Saia" in repro.PAPER and "Trehan" in repro.PAPER

    def test_docstring_quickstart_runs(self):
        """The module docstring's example must actually work."""
        from repro import (
            Dash,
            NeighborOfMaxAttack,
            default_metrics,
            preferential_attachment,
            run_campaign,
        )

        g = preferential_attachment(100, 2, seed=1)
        result = run_campaign(
            g, Dash(), NeighborOfMaxAttack(seed=2), metrics=default_metrics()
        )
        assert result.peak_delta <= 2 * 7


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                and obj is not errors.ReproError
                and obj.__module__ == "repro.errors"
            ):
                assert issubclass(obj, errors.ReproError), name

    def test_node_not_found_is_key_error(self):
        assert issubclass(errors.NodeNotFoundError, KeyError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(errors.ConfigurationError, ValueError)

    def test_error_messages_carry_context(self):
        err = errors.NodeNotFoundError(42)
        assert "42" in str(err)
        assert err.node == 42
        err2 = errors.EdgeNotFoundError(1, 2)
        assert err2.u == 1 and err2.v == 2


class TestRegistryCoherence:
    def test_paper_healers_are_figure8_legend(self):
        from repro import PAPER_HEALERS

        assert "dash" in PAPER_HEALERS
        assert "sdash" in PAPER_HEALERS
        assert "graph-heal" in PAPER_HEALERS

    def test_healer_and_adversary_names_disjoint_namespaces(self):
        from repro import ADVERSARIES, HEALERS

        # no accidental name reuse that could confuse CLI users
        assert not (set(HEALERS) & set(ADVERSARIES))
