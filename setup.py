"""Legacy setup shim.

The reproduction environment is offline (no `wheel`, setuptools 65.x), so
PEP 660 editable installs are unavailable; this shim lets
``pip install -e .`` fall back to ``setup.py develop``. All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
