#!/usr/bin/env python3
"""The motivating scenario: a P2P overlay losing its supernodes.

The paper opens with the August 2007 Skype outage — a failure of the
overlay's "self-healing mechanisms" that disconnected ~200M users. This
example models a Skype-like overlay (scale-free: a few high-degree
supernodes route for many leaf clients) under a cascade that keeps
knocking out the busiest supernode, and compares:

* no healing            — the overlay shatters almost immediately;
* naive GraphHeal       — stays connected but melts the surviving
                          supernodes with unbounded degree growth;
* DASH                  — stays connected with ≤ 2·log₂ n extra load on
                          any node.

Run:  python examples/skype_overlay.py
"""

from __future__ import annotations

import math

from repro import (
    MaxNodeAttack,
    make_healer,
    preferential_attachment,
    run_campaign,
)
from repro.sim.metrics import ComponentMetric, ConnectivityMetric, DegreeMetric
from repro.utils.tables import format_table

N = 400  # overlay peers
OUTAGE_WAVES = 120  # supernodes taken down by the cascade


def simulate(healer_name: str):
    overlay = preferential_attachment(N, m=2, seed=2007)
    result = run_campaign(
        overlay,
        make_healer(healer_name),
        MaxNodeAttack(),  # the cascade always topples the busiest node
        id_seed=815,
        max_deletions=OUTAGE_WAVES,
        metrics=[
            DegreeMetric(),
            ConnectivityMetric(),
            ComponentMetric(period=5),
        ],
    )
    return result


def main() -> None:
    print(f"Skype-style overlay: {N} peers, scale-free topology")
    print(
        f"cascade: {OUTAGE_WAVES} waves, each deleting the busiest supernode\n"
    )

    rows = []
    for name in ("none", "graph-heal", "dash"):
        r = simulate(name)
        rows.append(
            [
                name,
                "yes" if r["always_connected"] else "NO",
                int(r["max_components"]),
                int(r["max_degree_increase"]),
                int(r["final_max_degree"]),
            ]
        )
    print(
        format_table(
            [
                "healer",
                "connected",
                "max fragments",
                "max extra load (δ)",
                "final max degree",
            ],
            rows,
            title="Outage outcome by healing strategy",
        )
    )
    print(
        f"\nTheorem 1 envelope for DASH: 2·log2({N}) = {2 * math.log2(N):.1f} "
        "extra connections per peer, guaranteed."
    )
    print(
        "NoHeal fragments the overlay; GraphHeal survives by overloading "
        "survivors; DASH survives within its proven load budget."
    )


if __name__ == "__main__":
    main()
