#!/usr/bin/env python3
"""Theorem 2 live: why *every* conservative healer loses to LEVELATTACK.

A healer that promises "no node's degree grows by more than M per repair"
sounds safe. Theorem 2 proves it is a trap: on a complete (M+2)-ary tree
the LEVELATTACK schedule (Algorithm 2) — prune the low-δ subtrees, then
delete level by level from the leaves up — forces degree increase equal
to the tree depth D = Θ(log n) onto some node anyway.

This demo runs the attack against a 1-degree-bounded healer on deeper and
deeper 3-ary trees, showing forced δ == D every time, then runs DASH on
the same trees to show it stays within its own 2·log₂ n envelope — the
sense in which DASH is asymptotically optimal.

Run:  python examples/lower_bound_demo.py
"""

from __future__ import annotations

import math

from repro import Dash, DegreeBoundedHealer, LevelAttack, run_campaign
from repro.graph.generators import complete_kary_tree, kary_tree_size
from repro.utils.tables import format_table

M = 1  # the healer's per-round degree budget
BRANCHING = M + 2


def main() -> None:
    print(f"victim healer : DegreeBounded(M={M}) — at most {M} extra "
          "edge(s) per node per repair")
    print(f"battlefield   : complete {BRANCHING}-ary trees")
    print("adversary     : LEVELATTACK (Algorithm 2) with Prune\n")

    rows = []
    for depth in (2, 3, 4, 5):
        n = kary_tree_size(BRANCHING, depth)
        bounded = run_campaign(
            complete_kary_tree(BRANCHING, depth),
            DegreeBoundedHealer(max_increase=M),
            LevelAttack(BRANCHING),
            id_seed=0,
        )
        dash = run_campaign(
            complete_kary_tree(BRANCHING, depth),
            Dash(),
            LevelAttack(BRANCHING),
            id_seed=0,
        )
        rows.append(
            [
                depth,
                n,
                bounded.peak_delta,
                depth,
                dash.peak_delta,
                2 * math.log2(n),
            ]
        )
    print(
        format_table(
            [
                "tree depth D",
                "n",
                "forced δ (bounded healer)",
                "Theorem 2 says ≥",
                "DASH peak δ",
                "DASH bound 2log2(n)",
            ],
            rows,
            float_fmt=".1f",
            title="LEVELATTACK vs a degree-bounded healer",
        )
    )
    print(
        "\nThe bounded healer is forced to exactly D — logarithmic in n — "
        "so bounding per-round degree growth cannot beat DASH's 2·log₂ n "
        "total guarantee. No locality-aware algorithm can."
    )


if __name__ == "__main__":
    main()
