#!/usr/bin/env python3
"""Quickstart: heal a scale-free network through a targeted attack.

Builds the paper's workload (a Barabási–Albert preferential-attachment
graph), attacks it with the NeighborOfMax strategy (the paper's harshest),
heals with DASH, and prints the costs next to Theorem 1's guarantees.

Run:  python examples/quickstart.py [n]
"""

from __future__ import annotations

import math
import sys

from repro import (
    Dash,
    NeighborOfMaxAttack,
    default_metrics,
    preferential_attachment,
    run_campaign,
)
from repro.sim.metrics import ConnectivityMetric


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 200

    graph = preferential_attachment(n, m=2, seed=42)
    print(f"network : BA graph, n={n}, m={graph.num_edges} edges")
    print(f"attack  : NeighborOfMax (delete a random neighbor of the hub)")
    print(f"healer  : DASH\n")

    result = run_campaign(
        graph,
        Dash(),
        NeighborOfMaxAttack(seed=7),
        id_seed=1,
        metrics=default_metrics() + [ConnectivityMetric()],
    )

    bound_delta = 2 * math.log2(n)
    bound_id = 2 * math.log(n)
    print(f"deletions survived      : {result.deletions} (total destruction)")
    print(
        "connectivity maintained : "
        + ("yes" if result['always_connected'] else "NO")
    )
    print(
        f"max degree increase     : {result.peak_delta}"
        f"   (Theorem 1 bound: 2·log2 n = {bound_delta:.1f})"
    )
    print(
        f"max ID changes per node : {result['max_id_changes']:.0f}"
        f"   (w.h.p. bound: 2·ln n = {bound_id:.1f})"
    )
    print(
        f"max messages per node   : {result['max_messages']:.0f}"
    )
    print(
        f"amortized propagation   : {result['amortized_propagation']:.2f}"
        f" transmissions/deletion (O(log n) = {math.log2(n):.1f})"
    )
    print(
        f"healing edges added     : {result['healing_edges_new']:.0f}"
        f" over {result.deletions} deletions"
    )


if __name__ == "__main__":
    main()
