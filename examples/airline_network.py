#!/usr/bin/env python3
"""Infrastructure scenario: an airline's hub-and-spoke route map.

The paper lists infrastructure networks (explicitly: "an airline's
transportation network") among the reconfigurable networks its approach
targets. Here the invariant that matters is not just connectivity but
*stretch*: when a hub airport closes, passengers care how many extra legs
their re-routed itineraries take.

We build a three-level hub-and-spoke map (mega-hubs — regional hubs —
spokes), close airports with the MaxNode strategy (the paper found it the
most stretch-damaging), and compare the stretch/degree trade-off across
healers — the Figure 10 story on a concrete infrastructure topology.

Run:  python examples/airline_network.py
"""

from __future__ import annotations

from repro import MaxNodeAttack, make_healer, run_campaign
from repro.graph.graph import Graph
from repro.sim.metrics import ConnectivityMetric, DegreeMetric, StretchMetric
from repro.utils.tables import format_table

MEGA_HUBS = 4
REGIONALS_PER_MEGA = 5
SPOKES_PER_REGIONAL = 8
CLOSURES = 40


def build_route_map() -> Graph:
    """Mega-hub clique; regional hubs per mega; spoke airports per regional."""
    g = Graph()
    label = 0
    megas = []
    for _ in range(MEGA_HUBS):
        megas.append(label)
        label += 1
    for i, a in enumerate(megas):
        for b in megas[i + 1 :]:
            g.add_edge(a, b)
    for mega in megas:
        for _ in range(REGIONALS_PER_MEGA):
            regional = label
            label += 1
            g.add_edge(mega, regional)
            for _ in range(SPOKES_PER_REGIONAL):
                g.add_edge(regional, label)
                label += 1
    return g


def simulate(healer_name: str, route_map: Graph):
    original = route_map.copy()
    return run_campaign(
        route_map.copy(),
        make_healer(healer_name),
        MaxNodeAttack(),
        id_seed=99,
        max_deletions=CLOSURES,
        metrics=[
            DegreeMetric(),
            ConnectivityMetric(),
            StretchMetric(original, period=2),
        ],
    )


def main() -> None:
    route_map = build_route_map()
    n = route_map.num_nodes
    print(
        f"route map: {MEGA_HUBS} mega-hubs, "
        f"{MEGA_HUBS * REGIONALS_PER_MEGA} regional hubs, "
        f"{n} airports total, {route_map.num_edges} routes"
    )
    print(f"disruption: {CLOSURES} closures, always the busiest airport\n")

    rows = []
    for name in ("graph-heal", "binary-tree-heal", "dash", "sdash"):
        r = simulate(name, route_map)
        rows.append(
            [
                name,
                "yes" if r["always_connected"] else "NO",
                r["max_stretch"],
                r["last_stretch"],
                int(r["max_degree_increase"]),
            ]
        )
    print(
        format_table(
            [
                "healer",
                "connected",
                "worst itinerary stretch",
                "final stretch",
                "max extra routes/airport",
            ],
            rows,
            float_fmt=".2f",
            title="Hub closures: stretch vs. route-budget trade-off",
        )
    )
    print(
        "\nReading: GraphHeal keeps itineraries short by overloading "
        "airports with new routes; DASH caps the route budget but lets "
        "itineraries stretch; SDASH (surrogation) holds both down — the "
        "Figure 10 trade-off on an infrastructure map."
    )


if __name__ == "__main__":
    main()
