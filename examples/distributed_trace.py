#!/usr/bin/env python3
"""Watch DASH run as an actual distributed protocol.

The paper claims DASH "is fully distributed" with O(1) reconnection
latency. This example runs the message-passing implementation
(``repro.distributed``) on a small overlay, deleting a few nodes and
reporting, per deletion:

* how many synchronous rounds the network needed to quiesce,
* how many MINID-propagation messages flowed (Lemma 8's budget), and
* how much neighbor-of-neighbor (NoN) maintenance traffic the healing
  caused — the cost the paper delegates to [14, 18].

It then verifies the resulting topology matches the centralized simulator
edge-for-edge.

Run:  python examples/distributed_trace.py
"""

from __future__ import annotations

import random

from repro import Dash, SelfHealingNetwork, preferential_attachment
from repro.distributed import DistributedNetwork, MsgKind
from repro.utils.tables import format_table

N = 50
DELETIONS = 12


def main() -> None:
    graph = preferential_attachment(N, m=2, seed=3)
    distributed = DistributedNetwork(graph.copy(), Dash, seed=11)
    centralized = SelfHealingNetwork(graph.copy(), Dash(), seed=11)

    rng = random.Random(5)
    rows = []
    prev_id = prev_state = 0
    for step in range(1, DELETIONS + 1):
        victim = rng.choice(sorted(centralized.graph.nodes()))
        degree = centralized.graph.degree(victim)
        rounds = distributed.delete(victim)
        centralized.delete_and_heal(victim)

        id_total = distributed.engine.total_sent(MsgKind.ID_UPDATE)
        state_total = distributed.engine.total_sent(MsgKind.STATE)
        rows.append(
            [
                step,
                victim,
                degree,
                rounds,
                id_total - prev_id,
                state_total - prev_state,
            ]
        )
        prev_id, prev_state = id_total, state_total

    print(
        format_table(
            [
                "step",
                "victim",
                "deg",
                "rounds to quiesce",
                "ID msgs",
                "NoN msgs",
            ],
            rows,
            title=f"Distributed DASH trace (n={N})",
        )
    )

    assert distributed.graph() == centralized.graph
    assert distributed.healing_graph() == centralized.healing_graph
    print(
        "\nverified: distributed topology, healing edges, and component "
        "labels match the centralized simulator exactly."
    )
    print(
        f"totals: {prev_id} ID-propagation messages, "
        f"{prev_state} NoN-maintenance messages "
        f"over {DELETIONS} deletions."
    )


if __name__ == "__main__":
    main()
